"""High-level BFS driver: partition, simulate, reassemble, report.

:func:`run` is the typed entry point: it takes a :class:`RunConfig`
(the run's full cross-cutting configuration, validated in one place),
looks the algorithm up in the declarative :data:`ALGORITHMS` registry
(name -> :class:`AlgorithmSpec`: step-plugin class + capabilities),
launches the SPMD simulation of the
:class:`~repro.core.engine.TraversalEngine` with the requested machine
cost model, stitches the per-rank outputs back into full
``levels``/``parents`` arrays in the caller's vertex labels, and wraps
everything in a :class:`BFSResult` with TEPS accounting and the modeled
time breakdown.  :func:`run_bfs` keeps the historical keyword API as a
thin compatibility shim over ``run``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.bfs1d import TopDown1D
from repro.core.bfs2d import SpMSV2D, build_2d_blocks
from repro.core.bfs2d_dirop import DirOpt2D
from repro.core.bfs_dirop import DirOpt1D
from repro.core.engine import traversal_body
from repro.core.partition import Decomp2D
from repro.core.serial import bfs_serial
from repro.core.validate import count_traversed_edges, validate_bfs
from repro.faults import (
    CheckpointConfig,
    CheckpointStore,
    FaultContext,
    RetryPolicy,
    resolve_fault_plan,
)
from repro.graphs.graph import Graph
from repro.model.costmodel import DIROP_ALPHA, DIROP_BETA, NetworkCostModel
from repro.model.machine import HOPPER, get_machine
from repro.mpsim.engine import run_spmd
from repro.runtime import BACKENDS as RUNTIME_BACKENDS
from repro.mpsim.stats import SimStats
from repro.query.cc import ConnectedComponents1D
from repro.query.msbfs import MSBFS1D
from repro.query.sssp import DeltaSSSP1D


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative registry entry: how one algorithm name runs.

    ``step`` is the :class:`~repro.core.engine.AlgorithmStep` plugin
    class for engine-driven families (``None`` for the serial reference
    and the baselines, which bring their own rank bodies).
    ``capabilities`` names the cross-cutting concerns the family
    supports; :meth:`RunConfig.resolve` rejects options the registry
    does not declare:

    * ``"wire"`` — exchanges route through :mod:`repro.comm`
      (``codec``/``sieve`` apply);
    * ``"tracer"`` — instrumented with :mod:`repro.obs` phase spans;
    * ``"faults"`` — fault/checkpoint instrumentation
      (``faults``/``checkpoint_every``/``max_retries`` apply);
    * ``"trace-profile"`` — per-level profile under
      ``result.meta["level_profile"]`` when ``trace=True``.

    ``kind`` names the result family: ``"bfs"`` entries run through
    :func:`run` / :func:`run_bfs`; the batched query kinds (``"msbfs"``,
    ``"cc"``, ``"sssp"``, ``"landmark"``) run through
    :func:`repro.query.run_query`, which owns their stitching and
    validation.
    """

    family: str
    hybrid: bool
    step: type | None = None
    capabilities: frozenset = frozenset()
    kind: str = "bfs"


#: Everything the engine provides to its step plugins.
ENGINE_CAPABILITIES = frozenset({"wire", "tracer", "faults", "trace-profile"})

#: Algorithm registry: name -> spec.  Adding an algorithm is one entry
#: here plus one AlgorithmStep plugin class (docs/architecture.md has
#: the how-to); the driver below contains no per-name branches beyond
#: the family's step-constructor arguments.
ALGORITHMS: dict[str, AlgorithmSpec] = {
    "serial": AlgorithmSpec("serial", False),
    "1d": AlgorithmSpec("1d", False, TopDown1D, ENGINE_CAPABILITIES),
    "1d-hybrid": AlgorithmSpec("1d", True, TopDown1D, ENGINE_CAPABILITIES),
    "1d-dirop": AlgorithmSpec("1d-dirop", False, DirOpt1D, ENGINE_CAPABILITIES),
    "1d-dirop-hybrid": AlgorithmSpec(
        "1d-dirop", True, DirOpt1D, ENGINE_CAPABILITIES
    ),
    "2d": AlgorithmSpec("2d", False, SpMSV2D, ENGINE_CAPABILITIES),
    "2d-hybrid": AlgorithmSpec("2d", True, SpMSV2D, ENGINE_CAPABILITIES),
    "2d-dirop": AlgorithmSpec("2d-dirop", False, DirOpt2D, ENGINE_CAPABILITIES),
    "2d-dirop-hybrid": AlgorithmSpec(
        "2d-dirop", True, DirOpt2D, ENGINE_CAPABILITIES
    ),
    "pbgl": AlgorithmSpec("pbgl", False),
    "graph500-ref": AlgorithmSpec("graph500-ref", False),
    # Batched query families (repro.query.run_query).  cc and sssp-delta
    # carry batch state the base checkpoint does not cover, so they do
    # not declare "faults"; msbfs-1d snapshots its full lane words.
    "msbfs-1d": AlgorithmSpec(
        "msbfs-1d", False, MSBFS1D, ENGINE_CAPABILITIES, kind="msbfs"
    ),
    "cc": AlgorithmSpec(
        "cc",
        False,
        ConnectedComponents1D,
        frozenset({"wire", "tracer", "trace-profile"}),
        kind="cc",
    ),
    "sssp-delta": AlgorithmSpec(
        "sssp-delta",
        False,
        DeltaSSSP1D,
        frozenset({"wire", "tracer", "trace-profile"}),
        kind="sssp",
    ),
    # landmark wraps an internal msbfs-1d run; it is an offline index
    # build, so the fault battery covers the underlying msbfs-1d instead.
    "landmark": AlgorithmSpec(
        "landmark",
        False,
        None,
        frozenset({"wire", "tracer", "trace-profile"}),
        kind="landmark",
    ),
}


@dataclass
class BFSResult:
    """Output of one BFS traversal plus its simulation record."""

    levels: np.ndarray
    parents: np.ndarray
    source: int
    algorithm: str
    nranks: int
    threads: int
    nlevels: int
    m_traversed: int
    stats: SimStats | None = None
    meta: dict = field(default_factory=dict)

    @property
    def modeled_cores(self) -> int:
        return self.nranks * self.threads

    @property
    def time_total(self) -> float:
        """Modeled traversal seconds (0 when untimed)."""
        return self.stats.makespan if self.stats is not None else 0.0

    @property
    def time_comm(self) -> float:
        """Modeled seconds the slowest rank spent in MPI (incl. waits)."""
        return self.stats.max_mpi_time if self.stats is not None else 0.0

    @property
    def time_comp(self) -> float:
        return self.stats.max_compute_time if self.stats is not None else 0.0

    def gteps(self) -> float:
        """Traversed-edges-per-second rate in billions."""
        if self.time_total <= 0:
            raise ValueError("untimed run: pass a machine to run_bfs for TEPS")
        return self.m_traversed / self.time_total / 1e9

    def mteps(self) -> float:
        return self.gteps() * 1e3


def _resolve_threads(algorithm: str, threads: int | None, machine) -> int:
    """Hybrid defaults follow the paper: 4-way on Franklin, 6-way on Hopper."""
    hybrid = ALGORITHMS[algorithm].hybrid
    if threads is not None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if not hybrid and threads != 1:
            raise ValueError(f"{algorithm} is a flat variant; use a hybrid for threads > 1")
        return threads
    if not hybrid:
        return 1
    return 6 if machine is not None and machine is HOPPER else 4


@dataclass(frozen=True)
class RunConfig:
    """One BFS run's full configuration, validated in one place.

    Field semantics match the :func:`run_bfs` keyword of the same name
    (see its docstring); ``run_bfs`` is a shim building one of these.
    Construction checks the algorithm name; :meth:`resolve` checks every
    cross-field constraint (machine, threads, capability gating) and
    returns the resolved machine/thread choices the driver runs with.
    """

    algorithm: str = "1d"
    nprocs: int = 4
    threads: int | None = None
    machine: object = None
    kernel: str = "auto"
    dedup_sends: bool = True
    codec: object = "raw"
    sieve: object = False
    vector_dist: str = "2d"
    modeled_cores: int | None = None
    grid_shape: tuple[int, int] | None = None
    dirop_alpha: float | None = None
    dirop_beta: float | None = None
    validate: bool = False
    trace: bool = False
    runtime: str | None = None
    spmd_timeout: float | None = None
    tracer: object = None
    metrics: object = None
    faults: object = None
    checkpoint_every: int | None = None
    max_retries: int | None = None
    # Batched-query fields (repro.query families only).
    sources: tuple = ()
    sssp_delta: int | None = None
    weight_max: int | None = None
    weight_seed: int | None = None
    landmarks: int | None = None

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        if self.runtime is not None and self.runtime not in RUNTIME_BACKENDS:
            raise ValueError(
                f"unknown execution runtime {self.runtime!r}; "
                f"known: {sorted(RUNTIME_BACKENDS)}"
            )
        if self.spmd_timeout is not None and self.spmd_timeout <= 0:
            raise ValueError(
                f"spmd_timeout must be > 0, got {self.spmd_timeout}"
            )

    @property
    def spec(self) -> AlgorithmSpec:
        return ALGORITHMS[self.algorithm]

    @property
    def resilient(self) -> bool:
        """Whether any fault/checkpoint/retry option is active."""
        return (
            self.faults is not None
            or self.checkpoint_every is not None
            or self.max_retries is not None
        )

    def resolve(self) -> "ResolvedRun":
        """Validate cross-field constraints; resolve machine and threads."""
        spec = self.spec
        machine = get_machine(self.machine)
        threads = _resolve_threads(self.algorithm, self.threads, machine)
        wire_default = (
            self.codec == "raw" or getattr(self.codec, "name", None) == "raw"
        ) and not self.sieve
        if "wire" not in spec.capabilities and not wire_default:
            raise ValueError(
                f"{self.algorithm} does not route its exchanges through repro.comm; "
                "codec/sieve apply to the 1d/2d families only"
            )
        if self.tracer is not None and "tracer" not in spec.capabilities:
            raise ValueError(
                f"{self.algorithm} is not instrumented for span tracing; "
                "tracer applies to the 1d/2d families only"
            )
        # Metrics ride the same instrumentation seams as the tracer.
        if self.metrics is not None and "tracer" not in spec.capabilities:
            raise ValueError(
                f"{self.algorithm} is not instrumented for metrics; "
                "metrics applies to the 1d/2d families only"
            )
        if self.resilient and "faults" not in spec.capabilities:
            raise ValueError(
                f"{self.algorithm} has no fault/checkpoint instrumentation; "
                "faults/checkpoint_every/max_retries apply to the 1d/2d families only"
            )
        self._check_query_fields(spec)
        return ResolvedRun(config=self, spec=spec, machine=machine, threads=threads)

    def _check_query_fields(self, spec: AlgorithmSpec) -> None:
        """Gate the batched-query fields on the algorithm's kind."""
        if spec.kind == "bfs":
            for name in ("sources", "sssp_delta", "weight_max",
                         "weight_seed", "landmarks"):
                if getattr(self, name) not in ((), None):
                    raise ValueError(
                        f"{name} applies to the repro.query families only; "
                        f"{self.algorithm} is a single-source BFS"
                    )
            return
        if self.sieve:
            raise ValueError(
                f"{self.algorithm} re-ships targets whose lane words grow, "
                "so the sender sieve would drop live updates; sieve applies "
                "to the single-source families only"
            )
        codec_name = getattr(self.codec, "name", self.codec)
        if codec_name == "bitmap" and spec.kind in ("msbfs", "sssp", "landmark"):
            raise ValueError(
                f"{self.algorithm} ships candidate triples, and the bitmap "
                "codec collapses their duplicate targets; use raw, "
                "delta-varint or auto"
            )
        if self.sources and spec.kind in ("cc", "landmark"):
            raise ValueError(
                f"{self.algorithm} picks its own sources; "
                "sources apply to msbfs-1d/sssp-delta"
            )
        if spec.kind != "sssp":
            for name in ("sssp_delta", "weight_max", "weight_seed"):
                if getattr(self, name) is not None:
                    raise ValueError(f"{name} applies to sssp-delta only")
        if self.landmarks is not None and spec.kind != "landmark":
            raise ValueError("landmarks applies to the landmark family only")


@dataclass(frozen=True)
class ResolvedRun:
    """A validated :class:`RunConfig` plus its resolved machine/threads."""

    config: RunConfig
    spec: AlgorithmSpec
    machine: object
    threads: int


def run(graph: Graph, source: int, config: RunConfig) -> BFSResult:
    """Run one BFS traversal of ``graph`` from ``source`` per ``config``.

    The typed core of the driver: ``config`` is validated once, the
    algorithm's step plugin comes from the registry, and the SPMD launch
    plus result stitching below is the same code path for every engine
    family.  :func:`run_bfs` is the keyword-API shim over this.
    """
    if config.spec.kind != "bfs":
        raise ValueError(
            f"{config.algorithm} is a batched query family; "
            "use repro.query.run_query"
        )
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range [0, {graph.n})")
    resolved = config.resolve()
    spec, machine, threads = resolved.spec, resolved.machine, resolved.threads
    nprocs = config.nprocs
    src_internal = int(np.asarray(graph.to_internal(source)))
    fault_meta = None

    if spec.family == "serial":
        levels_int, parents_int = bfs_serial(graph.csr, src_internal)
        nlevels = int(levels_int.max()) if levels_int.max() >= 0 else 0
        stats = None
        nranks = 1
        spmd = None
    else:
        cost_model = (
            NetworkCostModel(machine, threads=threads, total_ranks=nprocs)
            if machine is not None
            else None
        )
        engine_kwargs = dict(
            machine=machine,
            threads=threads,
            trace=config.trace,
            tracer=config.tracer,
            metrics=config.metrics,
        )
        if spec.family in ("1d", "1d-dirop", "pbgl", "graph500-ref"):
            nranks = nprocs
            if spec.family == "1d":
                step_args = (graph.csr, src_internal)
                step_kwargs = dict(
                    dedup_sends=config.dedup_sends,
                    codec=config.codec,
                    sieve=config.sieve,
                )
            elif spec.family == "1d-dirop":
                step_args = (graph.csr, src_internal)
                step_kwargs = dict(
                    dedup_sends=config.dedup_sends,
                    codec=config.codec,
                    sieve=config.sieve,
                    alpha=config.dirop_alpha,
                    beta=config.dirop_beta,
                    symmetric=not graph.directed,
                )
            elif spec.family == "pbgl":
                from repro.baselines.pbgl_like import bfs_pbgl_like

                spmd = run_spmd(
                    nranks,
                    bfs_pbgl_like,
                    graph.csr,
                    src_internal,
                    machine=machine,
                    cost_model=cost_model,
                    runtime=config.runtime,
                    timeout=config.spmd_timeout,
                )
            else:
                from repro.baselines.graph500_ref import bfs_graph500_ref

                spmd = run_spmd(
                    nranks,
                    bfs_graph500_ref,
                    graph.csr,
                    src_internal,
                    machine=machine,
                    cost_model=cost_model,
                    runtime=config.runtime,
                    timeout=config.spmd_timeout,
                )
        else:  # 2d family
            if config.grid_shape is not None:
                pr, pc = config.grid_shape
            else:
                pr = pc = math.isqrt(nprocs)
            if pr < 1 or pc < 1:
                raise ValueError(f"grid must be positive, got {pr}x{pc}")
            nranks = pr * pc
            decomp = Decomp2D(
                graph.n, pr, pc, diagonal_vectors=(config.vector_dist == "1d")
            )
            blocks = build_2d_blocks(graph.csr, decomp, threads=threads)
            if cost_model is not None:
                cost_model = NetworkCostModel(
                    machine, threads=threads, total_ranks=nranks
                )
            step_args = (blocks, decomp, src_internal)
            step_kwargs = dict(
                kernel=config.kernel,
                modeled_cores=config.modeled_cores,
                codec=config.codec,
                sieve=config.sieve,
            )
            if spec.family == "2d-dirop":
                step_kwargs.update(
                    alpha=config.dirop_alpha,
                    beta=config.dirop_beta,
                    degrees=graph.csr.degrees(),
                )
        if spec.step is not None:
            spmd, fault_meta = _run_resilient(
                nranks,
                traversal_body,
                (spec.step, step_args, step_kwargs),
                engine_kwargs,
                cost_model,
                config.faults,
                config.checkpoint_every,
                config.max_retries,
                runtime=config.runtime,
                timeout=config.spmd_timeout,
            )
        lo_key, hi_key = spec.step.result_keys if spec.step else ("lo", "hi")
        levels_int = np.empty(graph.n, dtype=np.int64)
        parents_int = np.empty(graph.n, dtype=np.int64)
        for rank_out in spmd.returns:
            levels_int[rank_out[lo_key] : rank_out[hi_key]] = rank_out["levels"]
            parents_int[rank_out[lo_key] : rank_out[hi_key]] = rank_out["parents"]
        nlevels = max(r["nlevels"] for r in spmd.returns)
        stats = spmd.stats

    if config.validate:
        ref_levels, _ref_parents = bfs_serial(graph.csr, src_internal)
        validate_bfs(
            graph.csr,
            src_internal,
            levels_int,
            parents_int,
            reference_levels=ref_levels,
            undirected=not graph.directed,
        )

    level_profile = None
    if config.trace and "trace-profile" in spec.capabilities:
        level_profile = _merge_traces([r["trace"] for r in spmd.returns])

    m_traversed = count_traversed_edges(graph.csr, levels_int, graph.m_input)
    return BFSResult(
        levels=graph.relabel_level_array(levels_int),
        parents=graph.relabel_vertex_array(parents_int),
        source=source,
        algorithm=config.algorithm,
        nranks=nranks,
        threads=threads,
        nlevels=nlevels,
        m_traversed=m_traversed,
        stats=stats,
        meta={
            "graph": graph.name,
            "machine": machine.name if machine is not None else None,
            "kernel": config.kernel,
            "dedup_sends": config.dedup_sends,
            "codec": getattr(config.codec, "name", config.codec),
            "sieve": bool(config.sieve),
            "vector_dist": config.vector_dist,
            "dirop_alpha": (
                DIROP_ALPHA if config.dirop_alpha is None else config.dirop_alpha
            ),
            "dirop_beta": (
                DIROP_BETA if config.dirop_beta is None else config.dirop_beta
            ),
            "level_profile": level_profile,
            "tracer": config.tracer,
            "metrics": config.metrics,
            "faults": fault_meta,
        },
    )


def run_bfs(
    graph: Graph,
    source: int,
    algorithm: str = "1d",
    nprocs: int = 4,
    threads: int | None = None,
    machine=None,
    kernel: str = "auto",
    dedup_sends: bool = True,
    codec: str = "raw",
    sieve: bool = False,
    vector_dist: str = "2d",
    modeled_cores: int | None = None,
    grid_shape: tuple[int, int] | None = None,
    dirop_alpha: float | None = None,
    dirop_beta: float | None = None,
    validate: bool = False,
    trace: bool = False,
    runtime: str | None = None,
    spmd_timeout: float | None = None,
    tracer=None,
    metrics=None,
    faults=None,
    checkpoint_every: int | None = None,
    max_retries: int | None = None,
) -> BFSResult:
    """Run one BFS traversal of ``graph`` from ``source``.

    Compatibility shim: every keyword maps one-to-one onto the
    :class:`RunConfig` field of the same name, and the call is
    equivalent to ``run(graph, source, RunConfig(...))``.

    Parameters
    ----------
    graph:
        A preprocessed :class:`~repro.graphs.graph.Graph`.
    source:
        Vertex id in the caller's (original) labeling.
    algorithm:
        One of :data:`ALGORITHMS`: ``"serial"``, ``"1d"``, ``"1d-hybrid"``,
        ``"1d-dirop"``, ``"1d-dirop-hybrid"``, ``"2d"``, ``"2d-hybrid"``,
        ``"2d-dirop"``, ``"2d-dirop-hybrid"``, ``"pbgl"``,
        ``"graph500-ref"``.
    nprocs:
        Simulated MPI rank count.  2D variants use the closest square
        grid not exceeding ``nprocs`` (the paper's convention).
    threads:
        Intra-node threads modeled per rank (hybrids only); defaults to
        the paper's 4 (Franklin) or 6 (Hopper).
    machine:
        ``None`` (functional, untimed), a machine short name
        (``"franklin"``/``"hopper"``/``"carver"``), or a
        :class:`~repro.model.machine.MachineConfig`.
    kernel:
        SpMSV kernel for 2D: ``"auto"`` (polyalgorithm), ``"spa"``,
        ``"heap"``.
    dedup_sends:
        1D send-side deduplication (ablation switch).
    codec:
        Wire format for the exchange buffers (``"raw"``,
        ``"delta-varint"``, ``"bitmap"``, ``"auto"`` or a
        :class:`~repro.comm.Codec` instance); the alpha-beta model prices
        the *encoded* buffers, so compression is modeled speedup.
        Distributed 1d/2d families only.
    sieve:
        Sender-side filter dropping candidates whose target this rank
        already shipped (or observed discovered) at an earlier level —
        exact, parents stay bit-identical.  Distributed 1d/2d families
        only.
    vector_dist:
        2D vector distribution: ``"2d"`` (default) or ``"1d"``
        (diagonal-only; the Figure 4 ablation).
    modeled_cores:
        Overrides the core count fed to the polyalgorithm predicate.
    grid_shape:
        Explicit ``(pr, pc)`` processor grid for the 2D variants,
        overriding the closest-square default — the paper's general
        rectangular formulation (square grids keep the cheaper pairwise
        vector transpose).
    dirop_alpha / dirop_beta:
        Direction-optimizing switching thresholds (the ``1d-dirop`` and
        ``2d-dirop`` families): switch to bottom-up when the frontier's incident
        edges exceed ``1/alpha`` of the unexplored edges, back to
        top-down when the frontier shrinks below ``n / beta``.  Default
        to :data:`~repro.model.costmodel.DIROP_ALPHA` /
        :data:`~repro.model.costmodel.DIROP_BETA`.
    validate:
        Run serial reference + Graph 500 validation on the output.
    trace:
        Record an aggregated per-level profile (frontier size, candidate
        count, words sent, vertices discovered, summed over ranks) in
        ``result.meta["level_profile"]``.  Supported by the 1d/2d
        families; serial runs and baselines leave the profile ``None``.
    runtime:
        Execution backend for the SPMD launch: ``"threads"`` (default),
        ``"sequential"`` (deterministic round-robin scheduler), or
        ``"processes"`` (forked workers, real parallelism).  ``None``
        defers to the process-wide policy (``REPRO_RUNTIME``).  All
        modeled outputs are bit-identical across backends.
    spmd_timeout:
        Seconds a rank may wait at a rendezvous before the run aborts
        as deadlocked.  ``None`` defers to ``REPRO_SPMD_TIMEOUT`` or
        the 600 s default; the sequential runtime detects deadlocks
        structurally and ignores it.
    tracer:
        Optional :class:`~repro.obs.Tracer` recording nested per-rank,
        per-level phase spans in virtual time (1d/2d families only).
        Tracing is passive — stats stay bit-identical — and the tracer is
        stored in ``result.meta["tracer"]`` so
        :func:`repro.obs.run_report` and
        :func:`repro.obs.write_chrome_trace` can find it.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` recording typed
        labeled counters/gauges/histograms from the engine, comm channel
        and fault layer (1d/2d families only).  Passive like the tracer
        — stats stay bit-identical — and stored in
        ``result.meta["metrics"]`` so :func:`repro.obs.run_report` embeds
        the snapshot.
    faults:
        Deterministic fault schedule for the run: a ``--fault-spec``
        string (``"crash:rank=1,level=3;timeout:level=2;seed=7"``), a
        :class:`~repro.faults.FaultEvent`, or a
        :class:`~repro.faults.FaultPlan`.  Transient faults
        (timeout/corrupt) are absorbed by the comm channel's retry loop;
        a crash aborts the SPMD run, and — when checkpointing is on —
        the driver restarts it from the last complete checkpoint on a
        continuous virtual timeline.  1d/2d families only.
    checkpoint_every:
        Snapshot every N levels (level-granular checkpoint/restart); the
        save/restore traffic is charged by the cost model.  ``None``
        disables checkpointing, so an injected crash aborts the run.
    max_retries:
        Per-collective transient-retry budget (default
        :class:`~repro.faults.RetryPolicy`'s 3); a fault schedule denser
        than the budget raises ``RetryExhaustedError``.
    """
    return run(
        graph,
        source,
        RunConfig(
            algorithm=algorithm,
            nprocs=nprocs,
            threads=threads,
            machine=machine,
            kernel=kernel,
            dedup_sends=dedup_sends,
            codec=codec,
            sieve=sieve,
            vector_dist=vector_dist,
            modeled_cores=modeled_cores,
            grid_shape=grid_shape,
            dirop_alpha=dirop_alpha,
            dirop_beta=dirop_beta,
            validate=validate,
            trace=trace,
            runtime=runtime,
            spmd_timeout=spmd_timeout,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            checkpoint_every=checkpoint_every,
            max_retries=max_retries,
        ),
    )


#: Counters the resilience layer books on the rank clocks; accumulated
#: across restart attempts (a failed attempt's checkpoints and retries
#: are real modeled work the report must not drop).
_FAULT_COUNTERS = (
    "fault_retries",
    "fault_delays",
    "fault_corruptions",
    "checkpoints",
    "checkpoint_words",
    "restores",
    "restore_words",
)


def _run_resilient(
    nranks, body, args, kwargs, cost_model, faults, checkpoint_every, max_retries,
    runtime=None, timeout=None,
):
    """Launch an SPMD BFS with the run's fault plan armed.

    The fast path (no resilience options) is the plain ``run_spmd`` call.
    Otherwise the fault plan and checkpoint store are built once and the
    launch loops: a permanent rank crash is observed cooperatively by
    every rank at the level boundary (the engine returns a ``"crashed"``
    marker, so the SPMD run completes normally with deterministic clocks
    and spans); with checkpointing on, the crash event is marked consumed
    and the run restarts from the last complete checkpoint (or from the
    source when the crash predates the first one), ``base_time``
    continuing the failed attempt's virtual timeline.  A crash with
    checkpointing disabled raises the
    :class:`~repro.faults.RankCrashError` — a clean abort, never a hang.

    Returns ``(SpmdResult, fault_meta | None)``.
    """
    if faults is None and checkpoint_every is None and max_retries is None:
        spmd = run_spmd(
            nranks, body, *args, cost_model=cost_model,
            runtime=runtime, timeout=timeout, **kwargs,
        )
        return spmd, None

    plan = resolve_fault_plan(faults)
    if len(plan) and plan.max_rank() >= nranks:
        raise ValueError(
            f"fault plan targets rank {plan.max_rank()} "
            f"but the run has only {nranks} ranks"
        )
    retry = RetryPolicy() if max_retries is None else RetryPolicy(max_retries=max_retries)
    fault_ctx = FaultContext(plan, retry)
    checkpoint = (
        CheckpointConfig(CheckpointStore(nranks), every=checkpoint_every)
        if checkpoint_every is not None
        else None
    )

    counters = dict.fromkeys(_FAULT_COUNTERS, 0.0)

    def accumulate(stats):
        for name in _FAULT_COUNTERS:
            counters[name] += stats.counter(name)

    restores: list[dict] = []
    attempts = 1
    resume = None
    base = 0.0
    while True:
        spmd = run_spmd(
            nranks,
            body,
            *args,
            cost_model=cost_model,
            runtime=runtime,
            timeout=timeout,
            base_time=base,
            faults=fault_ctx,
            checkpoint=checkpoint,
            resume_level=resume,
            **kwargs,
        )
        crash = next(
            (
                r["crashed"]
                for r in spmd.returns
                if isinstance(r, dict) and "crashed" in r
            ),
            None,
        )
        if crash is None:
            break
        accumulate(spmd.stats)
        base = spmd.stats.makespan
        if checkpoint is None:
            raise crash
        # No complete checkpoint yet (crash before the first interval)
        # still recovers: None replays the traversal from the source.
        resume = checkpoint.store.latest_complete()
        plan.mark_fired(crash.event_index)
        restores.append(
            {
                "rank": crash.rank,
                "crash_level": crash.level,
                "resume_level": resume,
                "at_time": base,
            }
        )
        attempts += 1

    accumulate(spmd.stats)
    fault_meta = {
        "spec": plan.spec(),
        "seed": plan.seed,
        "events": [event.as_dict() for event in plan.events],
        "max_retries": retry.max_retries,
        "checkpoint_every": checkpoint_every,
        "attempts": attempts,
        "restores": restores,
        "counters": counters,
    }
    return spmd, fault_meta


def _merge_traces(rank_traces: list[list[dict]]) -> list[dict]:
    """Sum per-level counters across ranks (levels are lockstep).

    The direction-optimizing variant additionally records which
    ``direction`` a level ran in; the choice is collective, so the first
    rank's value stands for the level.
    """
    nlevels = max(len(t) for t in rank_traces)
    merged: list[dict] = []
    for i in range(nlevels):
        # Levels are lockstep but need not start at 1: a checkpoint-
        # restarted run's profile covers resume_level+1 onward.
        entry = {"level": i + 1, "frontier": 0, "candidates": 0,
                 "words_sent": 0, "wire_words": 0, "sieve_dropped": 0,
                 "discovered": 0}
        for t in rank_traces:
            if i < len(t):
                entry["level"] = t[i].get("level", i + 1)
                for key in ("frontier", "candidates", "words_sent",
                            "wire_words", "sieve_dropped", "discovered"):
                    entry[key] += t[i].get(key, 0)
                # Collective per-level choices (traversal direction, lane
                # count, CC batch, SSSP bucket): first rank's value stands.
                for key in ("direction", "lanes", "batch", "bucket"):
                    if key in t[i] and key not in entry:
                        entry[key] = t[i][key]
        merged.append(entry)
    return merged
