"""Unified level-synchronous traversal engine.

The paper's three BFS formulations — 1D Algorithm 2, the
direction-optimizing 1D refinement, and 2D Algorithm 3's semiring
SpMSV — differ only in what happens *inside* a level.  Everything
around the level is shared scaffolding, and this module owns all of it:

* rank-local setup: the :class:`~repro.model.costmodel.Charger`, the
  rank's span tracer, and the rank's fault handle (algorithm plugins add
  their partitions and :class:`~repro.comm.CommChannel` wire layers on
  top in :meth:`AlgorithmStep.setup`);
* the crash-cooperative level loop: every rank observes a scheduled
  crash at the same level boundary and returns a crash marker instead of
  aborting, so clocks, spans, and the checkpoint store stay
  deterministic for the recovery driver;
* checkpoint restore and save, including algorithm-declared extra state
  (sieve epoch, direction-optimizing hysteresis) via the
  :meth:`AlgorithmStep.state` / :meth:`AlgorithmStep.restore` protocol;
* the per-level trace-profile records behind ``run_bfs(..., trace=True)``;
* the level-closing ``sync``/``allreduce`` spans around the termination
  test;
* result marshaling (vertex range, local levels/parents, level count,
  crash marker, trace).

An algorithm is a plugin: a class implementing :class:`AlgorithmStep`
whose :meth:`~AlgorithmStep.step` runs one level and reports a
:class:`LevelOutcome`.  The three shipped plugins are
:class:`~repro.core.bfs1d.TopDown1D`,
:class:`~repro.core.bfs_dirop.DirOpt1D` and
:class:`~repro.core.bfs2d.SpMSV2D`; the registry binding algorithm names
to plugins and capabilities lives in :mod:`repro.core.runner`.

The engine is an SPMD rank body's core: construct one per simulated
rank (the ``bfs_1d``/``bfs_1d_dirop``/``bfs_2d`` wrappers do exactly
this) and call :meth:`TraversalEngine.run` under
:func:`repro.mpsim.run_spmd`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.comm import VertexRange
from repro.core.partition import Partition1D
from repro.faults import (
    RankCrashError,
    resolve_rank_faults,
    restore_checkpoint,
    save_checkpoint,
)
from repro.model.costmodel import Charger
from repro.obs.metrics import resolve_metrics
from repro.obs.tracer import resolve_tracer


def partition_ranges(part: Partition1D, nranks: int) -> list[VertexRange]:
    """Owned vertex range of every rank, as the comm layer's contexts."""
    ranges = []
    for rank in range(nranks):
        lo, hi = part.range_of(rank)
        ranges.append(VertexRange(lo, hi - lo))
    return ranges


@dataclass
class LevelOutcome:
    """What one :meth:`AlgorithmStep.step` reports back to the engine.

    The four counters feed the per-level trace profile (``run_bfs(...,
    trace=True)``); ``extra`` carries algorithm-specific profile fields
    (the direction-optimizing plugin records which ``direction`` ran).
    The new frontier itself is not part of the outcome — the step
    updates its own ``frontier`` attribute, which the engine reads for
    the ``discovered`` count and the next level.
    """

    candidates: int = 0
    words_sent: int = 0
    wire_words: int = 0
    sieve_dropped: int = 0
    extra: dict = field(default_factory=dict)


@runtime_checkable
class AlgorithmStep(Protocol):
    """What an algorithm plugin must provide to run under the engine.

    A step owns the *inside* of a level: its partition, wire channels,
    local ``levels``/``parents`` arrays and the current ``frontier``.
    The engine owns everything *around* it — see the module docstring.
    Lifecycle per rank::

        step.setup(engine)                  # partition, channels, arrays
        step.restore(snapshot) | step.initial_sync()
        repeat:  step.begin_level(L); step.step(L); step.termination_sync()
        checkpoint:  step.state() merged into the engine's base snapshot
    """

    #: Result-dict keys naming the owned vertex range (``("lo", "hi")``
    #: for the 1D partition, ``("plo", "phi")`` for 2D vector pieces).
    result_keys: tuple[str, str]
    #: Extra keyword arguments for the rank's ``Charger``.
    charger_kwargs: dict

    levels: np.ndarray
    parents: np.ndarray
    frontier: np.ndarray

    def setup(self, engine: "TraversalEngine") -> None:
        """Build the rank's partition, channels and traversal arrays."""

    def vertex_range(self) -> tuple[int, int]:
        """The rank's owned vertex range ``(lo, hi)``."""
        ...

    def initial_sync(self) -> int | None:
        """Pre-loop collective state; the initial termination count.

        Return ``None`` when the algorithm has no pre-loop termination
        test (the 1D top-down algorithm always runs level 1); the engine
        then enters the loop unconditionally, exactly reproducing a
        ``while True`` body with a post-level check.
        """
        ...

    def begin_level(self, level: int) -> dict:
        """Per-level pre-span work; returns the level span's attributes.

        Runs after the crash check and before the ``level`` span opens —
        the direction-optimizing plugin flips its traversal direction
        here, from collective state only (no communication).
        """
        ...

    def step(self, level: int) -> LevelOutcome:
        """Run one level's phases inside the open ``level`` span."""
        ...

    def termination_sync(self) -> int:
        """The level-closing Allreduce; returns the termination count."""
        ...

    def state(self) -> dict:
        """Algorithm-declared checkpoint state beyond the engine's base
        (``levels``/``parents``/``frontier``): the sieve's dedup epoch,
        direction hysteresis, cached termination counts."""
        ...

    def restore(self, snapshot: dict) -> int | None:
        """Restore :meth:`state` entries from a checkpoint snapshot;
        returns the termination count as of the checkpointed level (or
        ``None`` when the algorithm does not checkpoint one)."""
        ...


def traversal_body(
    comm,
    step_cls,
    step_args: tuple,
    step_kwargs: dict,
    machine=None,
    threads: int = 1,
    trace: bool = False,
    tracer=None,
    metrics=None,
    faults=None,
    checkpoint=None,
    resume_level: int | None = None,
) -> dict:
    """Generic SPMD rank body: build one step plugin and run the engine.

    ``run_bfs`` launches every engine-driven family through this single
    body — ``run_spmd(nranks, traversal_body, StepClass, args, kwargs,
    ...)`` — so registering a new algorithm needs no new rank-body
    function.  Each rank constructs its own step instance (steps hold
    per-rank arrays); ``step_args``/``step_kwargs`` are shared read-only
    inputs like the CSR or the 2D blocks.
    """
    step = step_cls(*step_args, **step_kwargs)
    return TraversalEngine(
        comm,
        step,
        machine=machine,
        threads=threads,
        trace=trace,
        tracer=tracer,
        metrics=metrics,
        faults=faults,
        checkpoint=checkpoint,
        resume_level=resume_level,
    ).run()


class TraversalEngine:
    """The level-synchronous skeleton shared by every BFS family.

    One engine instance is one rank's traversal: it is constructed
    inside the SPMD body with the rank's communicator and the run's
    cross-cutting options, builds the rank-local scaffold (charger,
    tracer handle, fault handle), delegates the per-level work to the
    ``step`` plugin, and marshals the rank's result dict.

    Behavior contract: results, modeled times, spans, checkpoints and
    fault recovery are bit-identical to the pre-engine hand-rolled
    loops — ``tests/test_golden_parity.py`` locks this in against
    committed fixtures.
    """

    def __init__(
        self,
        comm,
        step: AlgorithmStep,
        machine=None,
        threads: int = 1,
        trace: bool = False,
        tracer=None,
        metrics=None,
        faults=None,
        checkpoint=None,
        resume_level: int | None = None,
    ):
        self.comm = comm
        self.step = step
        self.threads = threads
        self.trace = trace
        self.checkpoint = checkpoint
        self.resume_level = resume_level
        self.charger = Charger(
            comm, machine=machine, threads=threads, **step.charger_kwargs
        )
        self.obs = resolve_tracer(tracer).for_rank(comm)
        # Passive like the tracer: metrics read outcomes but never touch
        # the virtual clocks, so a metered run stays bit-identical.
        self.metrics = resolve_metrics(metrics).for_rank(comm)
        self.faults = resolve_rank_faults(
            faults, comm, self.charger.machine, self.obs, self.metrics
        )

    def run(self) -> dict:
        """Execute the traversal; returns the rank's result dict."""
        comm, step, obs, charger = self.comm, self.step, self.obs, self.charger
        metrics = self.metrics
        step.setup(self)

        level = 1
        if self.resume_level is not None:
            snap = restore_checkpoint(
                self.checkpoint, comm, charger, obs, self.resume_level
            )
            step.levels[:] = snap["levels"]
            step.parents[:] = snap["parents"]
            step.frontier = snap["frontier"].copy()
            term = step.restore(snap)
            level = self.resume_level + 1
            metrics.inc("checkpoint_restores")
        else:
            term = step.initial_sync()

        level_trace: list[dict] = []
        crashed = None
        while True:
            if term is not None and term == 0:
                break
            # Cooperative failure detection: every rank observes a
            # scheduled crash at the same level boundary and returns a
            # crash marker — no engine abort, so clocks, spans, and the
            # checkpoint store stay deterministic for the recovery
            # driver to restart from.
            try:
                self.faults.on_level_start(level)
            except RankCrashError as crash:
                crashed = crash
                break
            frontier_in = int(step.frontier.size)
            level_attrs = step.begin_level(level)
            with obs.span("level", **level_attrs):
                outcome = step.step(level)

                metrics.inc("engine_levels")
                metrics.inc("engine_candidates", float(outcome.candidates))
                metrics.inc(
                    "engine_discovered", float(step.frontier.size), level=level
                )
                metrics.observe("engine_frontier_size", float(frontier_in))
                if "lanes" in level_attrs:
                    metrics.set_gauge(
                        "query_lanes_active", float(level_attrs["lanes"]), level=level
                    )
                if "direction" in level_attrs:
                    metrics.inc(
                        "engine_direction_levels", direction=level_attrs["direction"]
                    )

                if self.trace:
                    level_trace.append(
                        {
                            "level": level,
                            "frontier": frontier_in,
                            "candidates": outcome.candidates,
                            "words_sent": outcome.words_sent,
                            "wire_words": outcome.wire_words,
                            "sieve_dropped": outcome.sieve_dropped,
                            "discovered": int(step.frontier.size),
                            **outcome.extra,
                        }
                    )

                # Global termination test.
                with obs.span("sync"):
                    charger.level_overhead()
                    with obs.span("allreduce"):
                        term = step.termination_sync()

                # The termination Allreduce just made the level complete
                # on every rank — the globally-consistent point a
                # snapshot must cover.
                if (
                    self.checkpoint is not None
                    and term > 0
                    and self.checkpoint.due(level)
                ):
                    state = {
                        "levels": step.levels,
                        "parents": step.parents,
                        "frontier": step.frontier,
                    }
                    state.update(step.state())
                    save_checkpoint(self.checkpoint, comm, charger, obs, level, state)
                    metrics.inc("checkpoint_saves")
            level += 1

        lo_key, hi_key = step.result_keys
        lo, hi = step.vertex_range()
        result = {
            lo_key: lo,
            hi_key: hi,
            "levels": step.levels,
            "parents": step.parents,
            "nlevels": level - 1,
        }
        if crashed is not None:
            result["crashed"] = crashed
        if self.trace:
            result["trace"] = level_trace
        return result
