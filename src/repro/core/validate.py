"""Graph 500-style BFS output validation (specification section 4 of the
benchmark, which the paper's experiments follow).

Checks performed by :func:`validate_bfs`:

1. the source is its own parent at level 0;
2. reachability is consistent: a vertex has a level iff it has a parent;
3. every tree edge ``(parent[v], v)`` exists in the graph and spans
   exactly one level;
4. every graph edge connects vertices whose levels differ by at most one
   (and an edge never connects a reachable to an unreachable vertex in an
   undirected graph);
5. levels agree with true shortest-path distances when an oracle is
   supplied.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSR


class ValidationError(AssertionError):
    """A BFS output violated the Graph 500 validation rules."""


def validate_bfs(
    csr: CSR,
    source: int,
    levels: np.ndarray,
    parents: np.ndarray,
    reference_levels: np.ndarray | None = None,
    undirected: bool = True,
) -> None:
    """Raise :class:`ValidationError` on any specification violation."""
    n = csr.n
    levels = np.asarray(levels)
    parents = np.asarray(parents)
    if levels.shape != (n,) or parents.shape != (n,):
        raise ValidationError(
            f"output arrays must have length {n}, got {levels.shape}/{parents.shape}"
        )

    # Rule 1: the source.
    if levels[source] != 0:
        raise ValidationError(f"source level is {levels[source]}, expected 0")
    if parents[source] != source:
        raise ValidationError(
            f"parents[source] = {parents[source]}, expected {source}"
        )

    # Rule 2: levels and parents agree on reachability.
    reached = levels >= 0
    if not np.array_equal(reached, parents >= 0):
        bad = int(np.flatnonzero(reached != (parents >= 0))[0])
        raise ValidationError(
            f"vertex {bad}: level {levels[bad]} vs parent {parents[bad]} disagree"
        )

    # Rule 3: tree edges exist and span exactly one level.
    tree_vertices = np.flatnonzero(reached & (np.arange(n) != source))
    if tree_vertices.size:
        tree_parents = parents[tree_vertices]
        if np.any(levels[tree_parents] + 1 != levels[tree_vertices]):
            bad = int(
                tree_vertices[
                    np.flatnonzero(levels[tree_parents] + 1 != levels[tree_vertices])[0]
                ]
            )
            raise ValidationError(
                f"vertex {bad} at level {levels[bad]} has parent "
                f"{parents[bad]} at level {levels[parents[bad]]}"
            )
        # Edge existence, vectorized: CSR stores adjacencies sorted by
        # (row, column), so the flat indices array under the composite key
        # row * n + column is globally sorted and one searchsorted answers
        # every membership query at once.  The composite key needs
        # n^2 <= 2^63; beyond ~3e9 vertices (far past anything this
        # simulator materializes) it would overflow.
        if n > (1 << 31):
            raise ValidationError(
                f"validate_bfs supports up to 2^31 vertices, got {n}"
            )
        edge_keys = (
            np.repeat(np.arange(n, dtype=np.int64), csr.degrees()) * n + csr.indices
        )
        query_keys = tree_parents * n + tree_vertices
        if edge_keys.size:
            pos = np.searchsorted(edge_keys, query_keys)
            found = (pos < edge_keys.size) & (
                edge_keys[np.minimum(pos, edge_keys.size - 1)] == query_keys
            )
        else:
            found = np.zeros(query_keys.size, dtype=bool)
        if not found.all():
            bad = int(tree_vertices[np.flatnonzero(~found)[0]])
            raise ValidationError(
                f"tree edge ({parents[bad]}, {bad}) is not a graph edge"
            )

    # Rule 4: every graph edge spans at most one level.
    edge_src = np.repeat(np.arange(n, dtype=np.int64), csr.degrees())
    edge_dst = csr.indices
    both = reached[edge_src] & reached[edge_dst]
    if np.any(np.abs(levels[edge_src[both]] - levels[edge_dst[both]]) > 1):
        k = int(np.flatnonzero(np.abs(levels[edge_src[both]] - levels[edge_dst[both]]) > 1)[0])
        u, v = int(edge_src[both][k]), int(edge_dst[both][k])
        raise ValidationError(
            f"edge ({u}, {v}) spans levels {levels[u]} -> {levels[v]}"
        )
    if undirected:
        mixed = reached[edge_src] != reached[edge_dst]
        if np.any(mixed):
            k = int(np.flatnonzero(mixed)[0])
            raise ValidationError(
                f"edge ({edge_src[k]}, {edge_dst[k]}) connects reachable "
                "and unreachable vertices"
            )

    # Rule 5: exact distances, when an oracle is available.
    if reference_levels is not None:
        if not np.array_equal(levels, np.asarray(reference_levels)):
            bad = int(np.flatnonzero(levels != reference_levels)[0])
            raise ValidationError(
                f"vertex {bad}: level {levels[bad]} != reference "
                f"{reference_levels[bad]}"
            )


def count_traversed_edges(csr: CSR, levels: np.ndarray, m_input: int | None = None) -> int:
    """Edges counted by the TEPS metric.

    Graph 500 (and Section 6): the number of *input* edges whose both
    endpoints lie in the traversed component; each input edge counts once
    even though the symmetric representation visits it twice.  When the
    original input multiplicity is unknown, the stored undirected edge
    count within the component is used.
    """
    reached = np.asarray(levels) >= 0
    edge_src = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    within = reached[edge_src] & reached[csr.indices]
    stored = int(within.sum()) // 2  # each undirected edge stored twice
    if m_input is None:
        return stored
    # Scale by the input-to-stored ratio so duplicate input edges count as
    # the benchmark prescribes.
    total_stored = csr.nnz // 2
    if total_stored == 0:
        return 0
    return int(round(m_input * stored / total_stored))
