"""Distributed BFS with 2D matrix partitioning (Algorithm 3, Section 3.2).

Each level is a sparse matrix - sparse vector product over the
(select, max) semiring, executed in four phases on a square processor
grid:

1. **TransposeVector** — pairwise exchange so the frontier pieces line up
   with processor *columns*;
2. **expand** — ``Allgatherv`` along the processor column: every rank of
   column ``j`` obtains the full frontier restricted to vertex block ``j``
   (the columns of its matrix block);
3. **local SpMSV** — DCSC column extraction plus SPA- or heap-based
   merging, row-split into ``t`` thread pieces in the hybrid variant;
4. **fold** — ``Alltoallv`` along the processor row scatters candidate
   (vertex, parent) pairs to their vector-piece owners, who apply the
   ``t . pi-bar`` mask and update the parents.

Vertex ownership follows the "2D vector distribution" (every rank owns an
equal slice; Section 3.2) by default; ``Decomp2D(diagonal_vectors=True)``
reproduces the load-imbalanced diagonal-only distribution of Figure 4.

Only the level *interior* lives here: :class:`SpMSV2D` is an
:class:`~repro.core.engine.AlgorithmStep` plugin, and the level loop,
crash markers, checkpointing and result marshaling are the
:class:`~repro.core.engine.TraversalEngine`'s.  :func:`bfs_2d` is the
SPMD rank body binding the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.comm import (
    CommChannel,
    VertexRange,
    make_sieve,
    restore_sieve,
    sieve_state,
)
from repro.core.engine import LevelOutcome, TraversalEngine
from repro.core.frontier import dedup_candidates
from repro.core.partition import Decomp2D
from repro.graphs.csr import CSR
from repro.mpsim.communicator import Communicator
from repro.mpsim.grid import ProcessorGrid
from repro.sparse.dcsc import DCSC
from repro.sparse.spa import SPA
from repro.sparse.spmsv import spmsv


@dataclass(frozen=True)
class LocalBlock:
    """One rank's matrix block, row-split into thread pieces (Figure 2)."""

    pieces: list[DCSC]
    band_offsets: list[int]  # row offset of each piece within the block

    @property
    def nnz(self) -> int:
        return sum(piece.nnz for piece in self.pieces)


def build_2d_blocks(csr: CSR, decomp: Decomp2D, threads: int = 1) -> list[LocalBlock]:
    """Distribute the adjacency matrix over the grid, one block per rank.

    An edge ``u -> v`` becomes matrix entry ``(row=v, col=u)`` — i.e. the
    stored matrix is the transpose ``A^T`` the multiplication needs ("we
    will omit the transpose and assume that the input is pre-transposed",
    Section 3.2).  Returns blocks in rank order (``rank = i * side + j``).
    """
    pr, pc = decomp.pr, decomp.pc
    cols = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    rows = csr.indices
    bi = decomp.row_block_of(rows)
    bj = decomp.col_block_of(cols)
    ranks = bi * pc + bj
    order = np.argsort(ranks, kind="stable")
    rows, cols, ranks = rows[order], cols[order], ranks[order]
    counts = np.bincount(ranks, minlength=pr * pc)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    blocks: list[LocalBlock] = []
    for rank in range(pr * pc):
        i, j = divmod(rank, pc)
        rlo, rhi = decomp.row_block(i)
        clo, chi = decomp.col_block(j)
        sel = slice(offsets[rank], offsets[rank + 1])
        block = DCSC.from_coo(
            rhi - rlo,
            chi - clo,
            rows[sel] - rlo,
            cols[sel] - clo,
        )
        pieces = block.split_rowwise(threads)
        band = max(1, block.nrows // threads) if threads > 1 else block.nrows
        band_offsets = [
            min(t * band, block.nrows) if threads > 1 else 0
            for t in range(len(pieces))
        ]
        blocks.append(LocalBlock(pieces=pieces, band_offsets=band_offsets))
    return blocks


class SpMSV2D:
    """Algorithm 3's level interior, as an engine step plugin.

    Owns the processor grid, the row/column wire channels (sharing one
    sieve — a vertex observed discovered through the expand never needs
    folding again), the rank's vector piece, and the per-thread SPA
    accumulators; every level runs the transpose/expand/SpMSV/fold/update
    phases and terminates on an ``Allreduce`` of the new-frontier size.
    """

    result_keys = ("plo", "phi")
    # Row-split DCSC pieces are embarrassingly thread-parallel (Figure 2).
    charger_kwargs: dict = {"thread_efficiency": 0.75}

    def __init__(
        self,
        blocks: list[LocalBlock],
        decomp: Decomp2D,
        source: int,
        kernel: str = "auto",
        modeled_cores: int | None = None,
        codec="raw",
        sieve=False,
    ):
        self.blocks = blocks
        self.decomp = decomp
        self.source = source
        self.kernel = kernel
        self.modeled_cores = modeled_cores
        self.codec = codec
        self.sieve = sieve

    def setup(self, engine: TraversalEngine) -> None:
        decomp = self.decomp
        comm = engine.comm
        self.comm = comm
        self.charger = engine.charger
        self.obs = engine.obs
        self.threads = engine.threads
        grid = ProcessorGrid(comm, decomp.pr, decomp.pc)
        self.grid = grid
        self.local = self.blocks[comm.rank]
        if self.modeled_cores is None:
            self.modeled_cores = comm.size * engine.threads

        self.row_lo, self.row_hi = decomp.row_block(grid.row)
        self.col_lo, self.col_hi = decomp.col_block(grid.col)
        self.plo, self.phi = decomp.vec_piece(grid.row, grid.col)
        self.nloc = self.phi - self.plo

        # Wire layer: the fold's buffers index into the destination's
        # vector piece along my processor row; every expand contribution
        # lies inside my grid column's block (contributions are disjoint,
        # so per-piece decode + concat is exact).  Both channels share one
        # sieve — a vertex observed discovered through the expand never
        # needs folding again.
        self.shared_sieve = make_sieve(self.sieve, decomp.n)
        row_ranges = [
            VertexRange(vlo, vhi - vlo)
            for vlo, vhi in (
                decomp.vec_piece(grid.row, j) for j in range(decomp.pc)
            )
        ]
        self.row_channel = CommChannel(
            grid.row_comm, row_ranges, codec=self.codec, sieve=self.shared_sieve,
            charger=engine.charger, tracer=engine.obs,
            metrics=engine.metrics, faults=engine.faults,
        )
        col_ranges = [
            VertexRange(self.col_lo, self.col_hi - self.col_lo)
        ] * grid.col_comm.size
        self.col_channel = CommChannel(
            grid.col_comm, col_ranges, codec=self.codec, sieve=self.shared_sieve,
            charger=engine.charger, tracer=engine.obs,
            metrics=engine.metrics, faults=engine.faults,
        )

        self.levels = np.full(self.nloc, -1, dtype=np.int64)
        self.parents = np.full(self.nloc, -1, dtype=np.int64)
        self.spas = (
            [SPA(piece.nrows) for piece in self.local.pieces]
            if self.kernel != "heap"
            else None
        )

        if self.plo <= self.source < self.phi:
            self.levels[self.source - self.plo] = 0
            self.parents[self.source - self.plo] = self.source
            self.frontier = np.array([self.source], dtype=np.int64)
        else:
            self.frontier = np.empty(0, dtype=np.int64)

    def vertex_range(self) -> tuple[int, int]:
        return (self.plo, self.phi)

    def initial_sync(self) -> int:
        self.total = self.comm.allreduce(int(self.frontier.size))
        return self.total

    def begin_level(self, level: int) -> dict:
        return {"level": level}

    def _transpose_frontier(self, frontier: np.ndarray, level: int) -> np.ndarray:
        """TransposeVector: line the frontier up with processor columns.

        On a square grid this is the paper's pairwise P(i,j)<->P(j,i)
        swap; on a rectangular grid it is the general all-to-all
        (Section 3.2): each element is routed along my processor row to
        the grid column owning its column block, and the expand's gather
        unions the rows' contributions.
        """
        decomp, grid = self.decomp, self.grid
        with self.obs.span("transpose", level=level):
            if decomp.is_square:
                return grid.transpose_vector(frontier)
            dest_cols = decomp.col_block_of(frontier)
            grouped, _counts = kernels.bucket_by_owner(
                dest_cols, decomp.pc, frontier
            )
            transposed, _cnt = grid.row_comm.alltoallv_concat(
                [piece for (piece,) in grouped]
            )
            return transposed

    def step(self, level: int) -> LevelOutcome:
        decomp, grid = self.decomp, self.grid
        charger, obs = self.charger, self.obs
        frontier = self.frontier
        # 1. TransposeVector (see _transpose_frontier).
        transposed = self._transpose_frontier(frontier, level)

        # 2. Expand: column j assembles the full frontier of column
        #    block j — the column support of every matrix block in
        #    this grid column.  (On square grids the pieces happen to
        #    concatenate in ascending vertex order; nothing downstream
        #    relies on it.)
        with obs.span("expand"):
            f_col, expand_info = self.col_channel.allgatherv_vertices(
                transposed, level=level
            )
            charger.stream(float(f_col.size))

        # 3. Local SpMSV per thread piece; payload = the frontier
        #    vertex id itself, which becomes the parent of the
        #    discovered row.
        with obs.span("spmsv"):
            cand_rows = []
            cand_parents = []
            for t, piece in enumerate(self.local.pieces):
                idx, val, work = spmsv(
                    piece,
                    f_col - self.col_lo,
                    f_col,
                    kernel=self.kernel,
                    modeled_cores=self.modeled_cores,
                    spa=self.spas[t] if self.spas is not None else None,
                    tracer=obs,
                )
                charger.random(
                    float(work.lookups), ws_words=2.0 * max(piece.nzc, 1)
                )
                if work.kernel == "spa":
                    # Flag probe + value scatter + index append per
                    # candidate, plus the per-level dense-accumulator
                    # touch.
                    charger.random(
                        2.5 * work.candidates,
                        ws_words=float(max(piece.nrows, 1)),
                        candidates=float(work.candidates),
                    )
                    charger.stream(1.2 * piece.nrows)
                else:
                    charger.intops(
                        20.0 * work.heap_comparisons,
                        candidates=float(work.candidates),
                    )
                    charger.stream(float(work.candidates))
                cand_rows.append(idx + self.row_lo + self.local.band_offsets[t])
                cand_parents.append(val)
            trows = (
                np.concatenate(cand_rows) if cand_rows else np.empty(0, np.int64)
            )
            tvals = (
                np.concatenate(cand_parents)
                if cand_parents
                else np.empty(0, np.int64)
            )
            charger.count(edges_scanned=float(f_col.size))

        # 4. Fold: scatter candidates to vector-piece owners along the
        #    row.
        with obs.span("fold-pack"):
            owners = decomp.vec_owner_col(grid.row, trows)
            send, xinfo = self.row_channel.pack_pairs(trows, tvals, owners)
            charger.intops(float(xinfo.pairs))
            charger.count(unique_sends=float(xinfo.pairs))
        with obs.span("fold-exchange"):
            rv, rp = self.row_channel.exchange_pairs(send, xinfo, level=level)

        # 5. Mask with pi-bar and update (Algorithm 3 lines 9-11).
        with obs.span("update"):
            charger.random(float(rv.size), ws_words=float(max(self.nloc, 1)))
            unvisited = self.parents[rv - self.plo] == -1
            rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
            self.parents[rv - self.plo] = rp
            self.levels[rv - self.plo] = level
            self.frontier = rv
            if self.threads > 1:
                charger.thread_merge(float(self.frontier.size))

        return LevelOutcome(
            candidates=int(trows.size),
            words_sent=int(2 * xinfo.pairs + f_col.size),
            wire_words=int(xinfo.wire_words + expand_info.wire_words),
            sieve_dropped=xinfo.dropped,
        )

    def termination_sync(self) -> int:
        self.total = self.comm.allreduce(int(self.frontier.size))
        return self.total

    def state(self) -> dict:
        return {"total": self.total, **sieve_state(self.shared_sieve)}

    def restore(self, snapshot: dict) -> int:
        restore_sieve(self.shared_sieve, snapshot)
        self.total = int(snapshot["total"])
        return self.total


def bfs_2d(
    comm: Communicator,
    blocks: list[LocalBlock],
    decomp: Decomp2D,
    source: int,
    machine=None,
    threads: int = 1,
    kernel: str = "auto",
    modeled_cores: int | None = None,
    codec="raw",
    sieve=False,
    trace: bool = False,
    tracer=None,
    faults=None,
    checkpoint=None,
    resume_level: int | None = None,
) -> dict:
    """Rank body of the 2D algorithm (flat MPI when ``threads == 1``).

    ``blocks`` comes from :func:`build_2d_blocks` with the same ``decomp``
    and ``threads``.  ``modeled_cores`` feeds the SpMSV polyalgorithm's
    concurrency predicate (defaults to ``comm.size * threads``).
    ``codec``/``sieve`` configure the wire layer of both the expand
    ``Allgatherv`` (along the column) and the fold ``Alltoallv`` (along
    the row); see :mod:`repro.comm`.  ``trace`` records a per-level
    profile under the ``"trace"`` key.  ``tracer`` is an optional
    :class:`~repro.obs.tracer.Tracer` recording each level's
    ``transpose``/``expand``/``spmsv``/``fold-pack``/``fold-exchange``/
    ``update``/``sync`` spans in virtual time.
    ``faults``/``checkpoint``/``resume_level`` are the resilience hooks
    threaded by ``run_bfs`` (see :func:`repro.core.bfs1d.bfs_1d`); the
    fault view is shared by the row and column channels, so a transient
    scheduled on either collective site fires exactly once.
    """
    step = SpMSV2D(
        blocks,
        decomp,
        source,
        kernel=kernel,
        modeled_cores=modeled_cores,
        codec=codec,
        sieve=sieve,
    )
    return TraversalEngine(
        comm,
        step,
        machine=machine,
        threads=threads,
        trace=trace,
        tracer=tracer,
        faults=faults,
        checkpoint=checkpoint,
        resume_level=resume_level,
    ).run()
