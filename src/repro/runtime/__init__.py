"""Pluggable SPMD execution runtimes.

The simulator's algorithms are written against one interface — a
:class:`~repro.mpsim.communicator.Communicator` backed by an *execution
engine* — and this package supplies interchangeable engines:

* :mod:`repro.runtime.threads` — one OS thread per simulated rank
  rendezvousing on ``threading.Barrier`` (the historical engine, moved
  here verbatim).  The default: preemptive scheduling shakes out
  ordering bugs, and shared memory makes obs/faults plumbing free.
* :mod:`repro.runtime.sequential` — a deterministic single-runnable
  round-robin scheduler that steps ranks between collective rendezvous
  points.  No lock contention, no timeouts (a deadlock is *detected
  structurally* the moment no rank can run); the fastest and most
  debuggable path for tests and CI.
* :mod:`repro.runtime.processes` — one ``fork``-ed worker process per
  rank, a pipe-based coordinator for rendezvous, and
  ``multiprocessing.shared_memory``-backed numpy transfers for large
  buffers.  The only backend with real parallelism (no GIL); per-worker
  clock/stats/obs shards are merged into one report on exit.

**The bit-identity contract.**  Completion times depend only on
deterministic virtual clocks and payload sizes, so every modeled output
— parents, levels, times, wire words, spans — is identical under every
backend; only wall-clock changes.  ``tests/test_property_runtimes.py``
locks this in for every registered algorithm, and the golden fixtures
pin the default backend bit for bit.

**Choosing a backend.**  The ``REPRO_RUNTIME`` environment variable
selects the startup backend (``threads`` is the default);
:func:`set_runtime` / :func:`use_runtime` switch at runtime (the tests'
mechanism), and ``runtime=`` / ``--runtime`` select per run through
``RunConfig`` -> ``run_bfs`` / ``run_query`` -> the CLI.

Adding a backend: subclass :class:`repro.runtime.base.EngineBase`,
implement the :class:`ExecutionEngine` scheduling half (``collective``,
``mailbox_put``/``mailbox_get``, ``abort``) plus a module-level
``run_spmd``, list the module in :data:`BACKENDS`, and extend the
cross-backend property suite (its coverage meta-test fails on any
registry entry the sweep misses).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from contextlib import contextmanager
from typing import Any, Protocol, runtime_checkable

from repro.runtime.base import (  # noqa: F401  (re-exports)
    DEFAULT_TIMEOUT,
    TIMEOUT_ENV_VAR,
    CollectiveCostModel,
    EngineBase,
    SimAborted,
    SpmdFailure,
    SpmdResult,
    ZeroCostModel,
    default_timeout,
)
from repro.mpsim.stats import SimStats

#: Environment variable naming the startup backend.
ENV_VAR = "REPRO_RUNTIME"

#: Recognized backend names.  ``threads`` is the default.
BACKENDS = ("threads", "sequential", "processes")


@runtime_checkable
class ExecutionEngine(Protocol):
    """What a :class:`~repro.mpsim.communicator.Communicator` needs.

    One engine instance owns one run: per-rank clocks and wire stats,
    the communicator-group registry, and the scheduling machinery that
    rendezvouses ranks at collectives and tears everything down on
    failure.  :class:`repro.runtime.base.EngineBase` provides the state
    half; backends add the four scheduling methods.
    """

    nranks: int
    cost_model: CollectiveCostModel
    timeout: float
    record_peers: bool
    record_timeline: bool
    base_time: float
    clocks: list
    stats: list

    def register_group(self, members: Sequence[int]) -> Any:
        """Create rendezvous state for a new communicator group."""
        ...

    def collective(
        self,
        state: Any,
        rank: int,
        item: Any,
        reduce: Callable[[list], Any],
    ) -> Any:
        """Rendezvous the group: deposit ``item`` for group rank ``rank``,
        evaluate ``reduce(slots)`` exactly once per address space when
        all members have deposited, and return its value to every
        member.  ``reduce`` is deterministic, so backends may run it on
        an elected rank (shared memory) or on every worker (processes).
        """
        ...

    def mailbox_put(self, src: int, dst: int, item: Any) -> None:
        """Eager point-to-point send (global ranks)."""
        ...

    def mailbox_get(self, src: int, dst: int) -> Any:
        """Blocking FIFO point-to-point receive (global ranks)."""
        ...

    def abort(self, rank: int, exc: BaseException) -> None:
        """Record a failure and release every blocked rank."""
        ...

    def sim_stats(self) -> SimStats:
        ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """The per-backend module interface ``run_spmd`` dispatches to."""

    #: Backend name as selected by ``REPRO_RUNTIME`` / ``runtime=``.
    name: str

    def run_spmd(
        self,
        nranks: int,
        fn: Callable,
        *args: Any,
        cost_model: CollectiveCostModel | None = None,
        timeout: float | None = None,
        record_peers: bool = False,
        record_timeline: bool = False,
        base_time: float = 0.0,
        **kwargs: Any,
    ) -> SpmdResult:
        """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks."""
        ...


_active_name: str | None = None


def _resolve_startup_runtime() -> str:
    """Apply the ``REPRO_RUNTIME`` policy: threads unless overridden."""
    choice = os.environ.get(ENV_VAR, "").strip().lower()
    if choice and choice not in BACKENDS:
        raise ValueError(
            f"{ENV_VAR}={choice!r} is not an execution runtime; "
            f"known: {sorted(BACKENDS)}"
        )
    return choice or "threads"


def _load(name: str) -> ExecutionBackend:
    if name == "threads":
        from repro.runtime import threads as mod
    elif name == "sequential":
        from repro.runtime import sequential as mod
    else:
        from repro.runtime import processes as mod
    return mod


def active_runtime() -> str:
    """Name of the backend ``run_spmd`` currently dispatches to."""
    global _active_name
    if _active_name is None:
        _active_name = _resolve_startup_runtime()
    return _active_name


def set_runtime(name: str | None) -> str:
    """Switch the execution runtime process-wide.

    ``name`` is one of :data:`BACKENDS`, or ``None`` to re-apply the
    ``REPRO_RUNTIME`` startup policy.  Returns the active name.
    """
    global _active_name
    if name is None:
        _active_name = None
        return active_runtime()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown execution runtime {name!r}; known: {sorted(BACKENDS)}"
        )
    _active_name = name
    return _active_name


@contextmanager
def use_runtime(name: str):
    """Context manager pinning the runtime, restoring the previous one."""
    previous = active_runtime()
    set_runtime(name)
    try:
        yield
    finally:
        set_runtime(previous)


def get_backend(name: str | None = None) -> ExecutionBackend:
    """The backend module for ``name`` (default: the active runtime)."""
    if name is None:
        name = active_runtime()
    elif name not in BACKENDS:
        raise ValueError(
            f"unknown execution runtime {name!r}; known: {sorted(BACKENDS)}"
        )
    return _load(name)
