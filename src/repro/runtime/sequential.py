"""Deterministic single-runnable execution backend.

One baton is passed round-robin between rank bodies: exactly one rank
runs at any instant, and it runs until it *blocks* — at a collective
whose other members have not all arrived, or at a ``recv`` whose
message has not been sent — at which point the baton moves to the next
runnable rank in cyclic order.  The last member to arrive at a
collective evaluates the reduction and continues; earlier arrivers are
marked runnable again and resume (in rank order) once the baton reaches
them.

Because scheduling decisions depend only on the deterministic sequence
of rendezvous points, the interleaving is identical on every run — no
lock contention, no preemption races, and *no timeouts*: a deadlock is
detected structurally the moment no rank can run (every live rank
blocked), and aborts the simulation immediately instead of waiting for
a timer.  This is the fastest and most debuggable path for tests/CI.

Rank bodies still execute on (daemon) OS threads so that blocking is an
ordinary wait, but the baton discipline means the threads never run
concurrently; the ``timeout`` parameter is accepted for interface
compatibility and ignored.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import Any

from repro.runtime.base import (
    CollectiveCostModel,
    EngineBase,
    GroupBase,
    SimAborted,
    SpmdFailure,
    SpmdResult,
)

#: Backend name as selected by ``REPRO_RUNTIME`` / ``runtime=``.
name = "sequential"


class _GroupState(GroupBase):
    """Arrival bookkeeping of one communicator group."""

    __slots__ = ("slots", "arrived", "result")

    def __init__(self, members: Sequence[int]):
        super().__init__(members)
        self.slots: list[Any] = [None] * self.size
        self.arrived = 0
        self.result: Any = None


class SequentialEngine(EngineBase):
    """Round-robin baton scheduler over rank bodies.

    ``_status[r]`` is ``"ready"`` (waiting for the baton), ``"blocked"``
    (waiting inside a collective or recv, with ``_blocked_on[r]``
    naming the rendezvous), or ``"done"``.  Slot/result reuse on a
    group is safe without a drain phase because a collective's result
    cannot be overwritten until every member has re-arrived — which
    requires each waiter to have resumed and read it first.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: CollectiveCostModel | None = None,
        timeout: float | None = None,
        record_peers: bool = False,
        record_timeline: bool = False,
        base_time: float = 0.0,
    ):
        super().__init__(
            nranks,
            cost_model=cost_model,
            timeout=timeout,
            record_peers=record_peers,
            record_timeline=record_timeline,
            base_time=base_time,
        )
        self._batons = [threading.Event() for _ in range(nranks)]
        self._status = ["ready"] * nranks
        self._blocked_on: list[Any] = [None] * nranks
        self._aborted = False
        self._mailboxes: dict[tuple[int, int], list] = {}
        self._all_done = threading.Event()

    def _make_group(self, members: Sequence[int]) -> _GroupState:
        return _GroupState(members)

    def _check_abort(self) -> None:
        if self._aborted:
            raise SimAborted("simulation aborted")

    def abort(self, rank: int, exc: BaseException) -> None:
        self._errors.append((rank, exc))
        self._aborted = True
        # Teardown leaves the single-runnable discipline: every blocked
        # rank wakes, observes the flag, and unwinds via SimAborted.
        for baton in self._batons:
            baton.set()
        self._all_done.set()

    def _pass_baton(self, current: int) -> None:
        """Hand the baton to the next ready rank after ``current``."""
        for offset in range(1, self.nranks + 1):
            cand = (current + offset) % self.nranks
            if self._status[cand] == "ready":
                self._batons[cand].set()
                return
        if all(status == "done" for status in self._status):
            self._all_done.set()
        elif not self._aborted:
            # Every live rank is blocked: a structural deadlock
            # (mismatched collectives or a recv nobody sends to).
            self.abort(
                -1,
                TimeoutError(
                    "deadlock: every live rank is blocked "
                    "(mismatched collectives or a message never sent)"
                ),
            )

    def _suspend(self, grank: int, reason: Any) -> None:
        """Block ``grank`` on ``reason`` and yield the baton."""
        self._status[grank] = "blocked"
        self._blocked_on[grank] = reason
        self._pass_baton(grank)
        self._batons[grank].wait()
        self._batons[grank].clear()
        self._check_abort()

    def _wake(self, grank: int, reason: Any) -> None:
        if self._status[grank] == "blocked" and self._blocked_on[grank] == reason:
            self._status[grank] = "ready"
            self._blocked_on[grank] = None

    def collective(
        self,
        state: _GroupState,
        rank: int,
        item: Any,
        reduce: Callable[[list], Any],
    ) -> Any:
        self._check_abort()
        state.slots[rank] = item
        state.arrived += 1
        grank = state.members[rank]
        if state.arrived == state.size:
            state.result = reduce(list(state.slots))
            state.arrived = 0
            reason = ("coll", state)
            for member in state.members:
                if member != grank:
                    self._wake(member, reason)
            return state.result
        self._suspend(grank, ("coll", state))
        return state.result

    # -- point-to-point ----------------------------------------------------
    def mailbox_put(self, src: int, dst: int, item: Any) -> None:
        self._check_abort()
        self._mailboxes.setdefault((src, dst), []).append(item)
        self._wake(dst, ("recv", src, dst))

    def mailbox_get(self, src: int, dst: int) -> Any:
        while True:
            self._check_abort()
            box = self._mailboxes.get((src, dst))
            if box:
                return box.pop(0)
            self._suspend(dst, ("recv", src, dst))

    def finish_rank(self, grank: int) -> None:
        """Mark ``grank`` done and move the baton (or end the run)."""
        self._status[grank] = "done"
        self._pass_baton(grank)


def run_spmd(
    nranks: int,
    fn: Callable,
    *args: Any,
    cost_model: CollectiveCostModel | None = None,
    timeout: float | None = None,
    record_peers: bool = False,
    record_timeline: bool = False,
    base_time: float = 0.0,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` baton-scheduled ranks.

    Semantics match the threads backend (same aborts, same
    ``SpmdFailure``), but execution order is fully deterministic and a
    deadlock aborts immediately instead of after a timeout.
    """
    from repro.mpsim.communicator import Communicator

    engine = SequentialEngine(
        nranks,
        cost_model=cost_model,
        timeout=timeout,
        record_peers=record_peers,
        record_timeline=record_timeline,
        base_time=base_time,
    )
    returns: list[Any] = [None] * nranks

    def worker(rank: int) -> None:
        engine._batons[rank].wait()
        engine._batons[rank].clear()
        try:
            if not engine._aborted:
                comm = Communicator(engine, engine.world, rank)
                returns[rank] = fn(comm, *args, **kwargs)
        except SimAborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - must tear down peers
            engine.abort(rank, exc)
        finally:
            engine.finish_rank(rank)

    threads = []
    for rank in range(nranks):
        thread = threading.Thread(
            target=worker, args=(rank,), name=f"seq-rank-{rank}", daemon=True
        )
        threads.append(thread)
        thread.start()
    engine._batons[0].set()
    engine._all_done.wait()
    for thread in threads:
        thread.join()

    failure = engine.first_failure()
    if failure is not None:
        rank, exc = failure
        raise SpmdFailure(rank, exc, engine.sim_stats()) from exc
    return SpmdResult(returns=returns, stats=engine.sim_stats())
