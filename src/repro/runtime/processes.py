"""Process-parallel execution backend (fork workers + pipe coordinator).

One ``fork``-ed worker process per simulated rank — the only backend
with real parallelism (each rank owns a whole interpreter, no GIL).
Rank bodies, graphs and step arguments reach the workers by fork
inheritance (copy-on-write, nothing pickled on the way in); rendezvous
goes through a parent-side coordinator:

* a worker deposits a collective item as ``("coll", gid, seq, rank,
  blob)`` and blocks on its pipe; when all members of ``(gid, seq)``
  have deposited, the coordinator sends every member the ordered blob
  list and each worker evaluates the (deterministic) reduction locally;
* point-to-point messages are routed ``("put", ...)``/``("get", ...)``
  through the same pipes;
* large numpy payloads are externalized into
  ``multiprocessing.shared_memory`` segments — the pickle stream
  carries ``(name, dtype, shape)`` and receivers reattach the segment
  as a numpy view, so bulk buffers cross process boundaries without a
  serialize/copy through the pipe;
* a worker's terminal message ships its rank-local shards — clock, wire
  stats, tracer spans, metrics series, checkpoint snapshots — and the
  coordinator merges them into the caller's objects, so obs and
  checkpoint-restart behave exactly as under the shared-memory
  backends.

Group identity across address spaces: every worker executes the same
deterministic collective sequence, so a group is named by its global
member tuple plus an occurrence index — consistent in every worker
without coordination (``split`` registers groups per address space).

Failure handling: a rank body's exception travels home pickled inside
the exit message (``SpmdFailure`` and the fault exceptions define
``__reduce__`` for this); the coordinator then broadcasts an abort that
releases every blocked worker.  A message gap longer than the engine
timeout is treated as a stall/deadlock, aborting like the threads
backend's barrier timeout.
"""

from __future__ import annotations

import io
import multiprocessing
import pickle
from collections.abc import Callable, Sequence
from multiprocessing import connection, resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.runtime.base import (
    CollectiveCostModel,
    EngineBase,
    GroupBase,
    SimAborted,
    SpmdFailure,
    SpmdResult,
)

#: Backend name as selected by ``REPRO_RUNTIME`` / ``runtime=``.
name = "processes"

#: Arrays at least this many bytes ride shared memory instead of the
#: pipe's pickle stream.  Small payloads (termination counts, frontier
#: tails) are cheaper inline than through a segment round-trip.
SHM_MIN_BYTES = 1 << 15

#: Pickle persistent-id tag for a shared-memory-backed array.
_SHM_TAG = "repro-shm"

#: Grace period (seconds) after an abort broadcast before stragglers
#: are terminated outright.
_ABORT_GRACE = 5.0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _ShmPickler(pickle.Pickler):
    """Pickler externalizing large arrays into shared-memory segments."""

    def __init__(self, file, segments: list):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._segments = segments

    def persistent_id(self, obj):
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= SHM_MIN_BYTES
            and not obj.dtype.hasobject
        ):
            seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
            view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)
            view[...] = obj
            self._segments.append(seg)
            return (_SHM_TAG, seg.name, obj.dtype.str, obj.shape)
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler materializing shared-memory views back into arrays."""

    def persistent_load(self, pid):
        tag, seg_name, dtype, shape = pid
        if tag != _SHM_TAG:  # pragma: no cover - foreign stream
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        try:
            seg = shared_memory.SharedMemory(name=seg_name)
        except FileNotFoundError:
            # Only reachable during teardown, when a peer's cleanup won
            # the race; surface as the abort it is part of.
            raise SimAborted("shared segment vanished during teardown") from None
        try:
            return np.array(
                np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf),
                copy=True,
            )
        finally:
            seg.close()


def _shm_dumps(obj: Any, segments: list) -> bytes:
    buf = io.BytesIO()
    _ShmPickler(buf, segments).dump(obj)
    return buf.getvalue()


def _shm_loads(blob: bytes) -> Any:
    return _ShmUnpickler(io.BytesIO(blob)).load()


def _safe_dumps(obj: Any, fallback_label: str):
    """Pickle ``obj``, degrading gracefully when it cannot travel."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), None
    except Exception as exc:  # noqa: BLE001 - any pickling failure
        return None, RuntimeError(f"{fallback_label} not picklable: {exc}")


class _GroupState(GroupBase):
    """Worker-local group handle: wire identity plus a round counter."""

    __slots__ = ("gid", "seq")

    def __init__(self, members: Sequence[int], gid):
        super().__init__(members)
        #: ``(member tuple, occurrence index)`` — identical in every
        #: worker because group registration is deterministic.
        self.gid = gid
        self.seq = 0


class ProcessEngine(EngineBase):
    """Engine half that lives in every address space.

    The parent constructs it pre-fork (clocks, stats, world group);
    workers inherit the instance and bind their pipe end + rank before
    running the body.  The scheduling methods are only ever called
    worker-side; the parent's copy is where shards are merged back.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: CollectiveCostModel | None = None,
        timeout: float | None = None,
        record_peers: bool = False,
        record_timeline: bool = False,
        base_time: float = 0.0,
    ):
        self._gid_counts: dict[tuple, int] = {}
        #: Worker-side shared-memory lifecycle: segments from a group's
        #: previous round (unlinkable once the next round completes) and
        #: segments stranded by an abort (unlinked by the parent last).
        self._prev_segments: dict[Any, list] = {}
        self._stranded: list = []
        self._conn = None
        self._worker_rank: int | None = None
        super().__init__(
            nranks,
            cost_model=cost_model,
            timeout=timeout,
            record_peers=record_peers,
            record_timeline=record_timeline,
            base_time=base_time,
        )

    def _make_group(self, members: Sequence[int]) -> _GroupState:
        key = tuple(members)
        occurrence = self._gid_counts.get(key, 0)
        self._gid_counts[key] = occurrence + 1
        return _GroupState(key, (key, occurrence))

    def abort(self, rank: int, exc: BaseException) -> None:
        self._errors.append((rank, exc))

    def _request(self, msg: tuple) -> Any:
        """Send one request and block for its reply (worker-side)."""
        conn = self._conn
        conn.send(msg)
        reply = conn.recv()
        if reply[0] != "ok":
            raise SimAborted("simulation aborted")
        return reply[1]

    def collective(
        self,
        state: _GroupState,
        rank: int,
        item: Any,
        reduce: Callable[[list], Any],
    ) -> Any:
        segments: list = []
        blob = _shm_dumps(item, segments)
        seq = state.seq
        state.seq += 1
        try:
            blobs = self._request(("coll", state.gid, seq, rank, blob))
        except SimAborted:
            # The round never completed; nobody will attach these.  The
            # parent unlinks them after every worker is gone.
            self._stranded.extend(segments)
            raise
        slots = [_shm_loads(b) for b in blobs]
        result = reduce(slots)
        # Every member deposited this round, so every member has
        # materialized the *previous* round's blobs — those segments
        # can be unlinked now (never earlier: a receiver may not have
        # attached yet; never later than needed: memory is bounded by
        # two rounds per group).
        for seg in self._prev_segments.pop(state.gid, ()):
            seg.close()
            seg.unlink()
        if segments:
            self._prev_segments[state.gid] = segments
        return result

    # -- point-to-point ----------------------------------------------------
    def mailbox_put(self, src: int, dst: int, item: Any) -> None:
        # Eager send, no reply; p2p payloads are small (departure-stamped
        # buffers) and always travel inline.
        self._conn.send(("put", src, dst, pickle.dumps(item, pickle.HIGHEST_PROTOCOL)))

    def mailbox_get(self, src: int, dst: int) -> Any:
        return pickle.loads(self._request(("get", src, dst)))

    # -- worker-side lifecycle ---------------------------------------------
    def leftover_segment_names(self) -> list[str]:
        """Names of segments this worker created but may not unlink."""
        names = [seg.name for segs in self._prev_segments.values() for seg in segs]
        names.extend(seg.name for seg in self._stranded)
        return names


def _collect_shards(rank: int, kwargs: dict) -> dict:
    """Extract rank ``rank``'s mutations of the obs/fault objects.

    The run's cross-cutting collaborators (tracer, metrics, checkpoint
    store) arrive in the body's keyword arguments; each keys its state
    per rank, and a worker only ever writes its own rank's entries — so
    shipping those entries wholesale reconstructs the run exactly.
    """
    shards: dict = {}
    tracer = kwargs.get("tracer")
    if tracer is not None and hasattr(tracer, "_ranks"):
        rt = tracer._ranks.get(rank)
        if rt is not None:
            shards["spans"] = rt.spans
    metrics = kwargs.get("metrics")
    if metrics is not None and hasattr(metrics, "_ranks"):
        rm = metrics._ranks.get(rank)
        if rm is not None:
            shards["metrics"] = (
                rm.counters,
                rm.gauges,
                rm.histograms,
                dict(metrics._types),
                dict(metrics._buckets),
            )
    store = getattr(kwargs.get("checkpoint"), "store", None)
    if store is not None and hasattr(store, "_levels"):
        shards["checkpoints"] = {
            level: by_rank[rank]
            for level, by_rank in store._levels.items()
            if rank in by_rank
        }
    return shards


def _merge_shards(engine: ProcessEngine, kwargs: dict, rank: int, payload: dict) -> None:
    """Fold one worker's exit payload into the parent's objects."""
    engine.clocks[rank] = payload["clock"]
    engine.stats[rank] = payload["stats"]
    shards = payload["shards"]
    tracer = kwargs.get("tracer")
    if "spans" in shards and tracer is not None:
        from repro.obs.tracer import RankTracer

        rt = tracer._ranks.get(rank)
        if rt is None:
            rt = RankTracer(rank, engine.clocks[rank])
            tracer._ranks[rank] = rt
        else:
            rt._clock = engine.clocks[rank]
            rt._stack.clear()
        rt.spans = shards["spans"]
    metrics = kwargs.get("metrics")
    if "metrics" in shards and metrics is not None:
        counters, gauges, histograms, types, buckets = shards["metrics"]
        metrics._types.update(types)
        metrics._buckets.update(buckets)
        rm = metrics.for_rank(rank)
        rm.counters = counters
        rm.gauges = gauges
        rm.histograms = histograms
    store = getattr(kwargs.get("checkpoint"), "store", None)
    if "checkpoints" in shards and store is not None:
        for level, snap in shards["checkpoints"].items():
            store._levels.setdefault(level, {})[rank] = snap


def _worker_main(engine, rank, pipes, fn, args, kwargs) -> None:
    """Entry point of one forked rank worker."""
    from repro.mpsim.communicator import Communicator

    for i, (parent_end, child_end) in enumerate(pipes):
        parent_end.close()
        if i != rank:
            child_end.close()
    conn = pipes[rank][1]
    engine._conn = conn
    engine._worker_rank = rank

    status, ret, error = "done", None, None
    try:
        comm = Communicator(engine, engine.world, rank)
        ret = fn(comm, *args, **kwargs)
    except SimAborted:
        status = "aborted"
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        status, error = "error", exc

    payload = {
        "return": ret,
        "error": error,
        "clock": engine.clocks[rank],
        "stats": engine.stats[rank],
        "shards": _collect_shards(rank, kwargs),
        "segments": engine.leftover_segment_names(),
    }
    blob, pickle_err = _safe_dumps(payload, f"rank {rank} exit payload")
    if blob is None:
        if error is not None:
            # Preserve the failure even when the original exception
            # cannot travel.
            payload["error"] = RuntimeError(f"rank {rank} failed: {error!r}")
            status = "error"
        else:
            payload["error"] = pickle_err
            status = "error"
        payload["return"] = None
        payload["shards"] = {}
        blob, _ = _safe_dumps(payload, f"rank {rank} exit payload")
    try:
        conn.send(("exit", rank, status, blob))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
    conn.close()


def _unlink_leftovers(names: set[str]) -> None:
    """Parent-side final sweep of segments workers could not unlink."""
    for seg_name in names:
        try:
            seg = shared_memory.SharedMemory(name=seg_name)
        except FileNotFoundError:
            continue
        seg.close()
        seg.unlink()


def run_spmd(
    nranks: int,
    fn: Callable,
    *args: Any,
    cost_model: CollectiveCostModel | None = None,
    timeout: float | None = None,
    record_peers: bool = False,
    record_timeline: bool = False,
    base_time: float = 0.0,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` forked workers.

    Semantics match the threads backend (same modeled outputs, same
    ``SpmdFailure``); the coordinator's message-gap timeout plays the
    barrier timeout's role.
    """
    if not _fork_available():
        raise RuntimeError(
            "the processes runtime requires the fork start method "
            "(unavailable on this platform); use threads or sequential"
        )
    ctx = multiprocessing.get_context("fork")
    # Start the tracker pre-fork so every worker shares it: duplicate
    # registrations of one segment then dedup and the creator's unlink
    # unregisters — no spurious leaked-resource warnings at shutdown.
    resource_tracker.ensure_running()

    engine = ProcessEngine(
        nranks,
        cost_model=cost_model,
        timeout=timeout,
        record_peers=record_peers,
        record_timeline=record_timeline,
        base_time=base_time,
    )
    pipes = [ctx.Pipe() for _ in range(nranks)]
    procs = []
    for rank in range(nranks):
        proc = ctx.Process(
            target=_worker_main,
            args=(engine, rank, pipes, fn, args, kwargs),
            name=f"spmd-rank-{rank}",
            daemon=True,
        )
        procs.append(proc)
        proc.start()
    for _parent_end, child_end in pipes:
        child_end.close()

    conns = {rank: pipes[rank][0] for rank in range(nranks)}
    rank_of = {conn: rank for rank, conn in conns.items()}

    pending: dict[tuple, dict[int, bytes]] = {}
    mailbox: dict[tuple[int, int], list[bytes]] = {}
    waiting_get: set[tuple[int, int]] = set()
    exited: dict[int, tuple[str, bytes | None]] = {}
    leftover_segments: set[str] = set()
    aborting = False

    def live_conns():
        return [conn for rank, conn in conns.items() if rank not in exited]

    def try_send(target, msg):
        # A worker may exit (or die) between electing to reply and the
        # write landing; its exit/EOF is handled on its own pipe.
        try:
            target.send(msg)
        except (BrokenPipeError, OSError):
            pass

    def broadcast_abort():
        nonlocal aborting
        aborting = True
        for rank, conn in conns.items():
            if rank not in exited:
                try_send(conn, ("abort",))

    stalled = False
    while len(exited) < nranks:
        ready = connection.wait(live_conns(), timeout=engine.timeout)
        if not ready:
            if stalled:
                # Second silent window after the abort broadcast: give
                # up on graceful exits and terminate below.
                break
            engine.abort(
                -1,
                TimeoutError(
                    f"collective timed out after {engine.timeout}s — a rank "
                    "never arrived (deadlock or mismatched collectives)"
                ),
            )
            broadcast_abort()
            stalled = True
            continue
        for conn in ready:
            try:
                msg = conn.recv()
            except EOFError:
                rank = rank_of[conn]
                exited[rank] = ("lost", None)
                if not aborting:
                    engine.abort(
                        rank, RuntimeError(f"worker for rank {rank} died unexpectedly")
                    )
                    broadcast_abort()
                continue
            kind = msg[0]
            if kind == "coll":
                _kind, gid, seq, member, blob = msg
                if aborting:
                    try_send(conn, ("abort",))
                    continue
                entry = pending.setdefault((gid, seq), {})
                entry[member] = blob
                members = gid[0]
                if len(entry) == len(members):
                    ordered = [entry[i] for i in range(len(members))]
                    for grank in members:
                        try_send(conns[grank], ("ok", ordered))
                    del pending[(gid, seq)]
            elif kind == "put":
                _kind, src, dst, blob = msg
                if (src, dst) in waiting_get:
                    waiting_get.discard((src, dst))
                    try_send(conns[dst], ("ok", blob))
                else:
                    mailbox.setdefault((src, dst), []).append(blob)
            elif kind == "get":
                _kind, src, dst = msg
                if aborting:
                    try_send(conn, ("abort",))
                    continue
                box = mailbox.get((src, dst))
                if box:
                    try_send(conn, ("ok", box.pop(0)))
                else:
                    waiting_get.add((src, dst))
            elif kind == "exit":
                _kind, rank, status, blob = msg
                exited[rank] = (status, blob)
                if status == "error" and not aborting:
                    broadcast_abort()
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unknown worker message {msg!r}")

    grace = min(engine.timeout, _ABORT_GRACE)
    for rank, proc in enumerate(procs):
        proc.join(timeout=None if rank in exited else grace)
        if proc.is_alive():
            proc.terminate()
            proc.join()
    for conn in conns.values():
        conn.close()

    returns: list[Any] = [None] * nranks
    failures: list[tuple[int, BaseException]] = []
    for rank in sorted(exited):
        status, blob = exited[rank]
        if blob is None:
            continue
        payload = pickle.loads(blob)
        leftover_segments.update(payload.get("segments", ()))
        _merge_shards(engine, kwargs, rank, payload)
        if status == "done":
            returns[rank] = payload["return"]
        elif status == "error" and payload["error"] is not None:
            failures.append((rank, payload["error"]))
    _unlink_leftovers(leftover_segments)

    # A body failure outranks the secondary timeout/lost-worker errors
    # it triggers; fall back to those only when no body failed.
    if failures:
        rank, exc = failures[0]
        raise SpmdFailure(rank, exc, engine.sim_stats()) from exc
    failure = engine.first_failure()
    if failure is not None:
        rank, exc = failure
        raise SpmdFailure(rank, exc, engine.sim_stats()) from exc
    return SpmdResult(returns=returns, stats=engine.sim_stats())
