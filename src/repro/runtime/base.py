"""Shared substrate pieces every execution backend is built from.

The classes here are backend-neutral: the failure/teardown exceptions,
the collective cost-model interface, the per-run result container, and
:class:`EngineBase` — the state every engine owns regardless of how it
schedules rank bodies (virtual clocks, wire statistics, the group
registry).  Backend modules (:mod:`repro.runtime.threads`,
:mod:`repro.runtime.sequential`, :mod:`repro.runtime.processes`)
subclass :class:`EngineBase` and add their scheduling and rendezvous
machinery.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.mpsim.clock import RankClock
from repro.mpsim.stats import RankStats, SimStats

#: Default seconds a rank may wait at a rendezvous before the run is
#: aborted.  Generous, because functional simulations with hundreds of
#: ranks can make slow progress under the GIL; a genuine deadlock still
#: surfaces.  Overridable per run (``timeout=``/``spmd_timeout=``) or
#: per environment (:data:`TIMEOUT_ENV_VAR`).
DEFAULT_TIMEOUT = 600.0

#: Environment variable overriding :data:`DEFAULT_TIMEOUT` for runs that
#: do not pass an explicit timeout — slow CI boxes raise it, deadlock
#: regression tests lower it.
TIMEOUT_ENV_VAR = "REPRO_SPMD_TIMEOUT"


def default_timeout() -> float:
    """The timeout applied when a run does not pass one explicitly."""
    raw = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{TIMEOUT_ENV_VAR}={raw!r} is not a number of seconds"
        ) from None
    if value <= 0:
        raise ValueError(f"{TIMEOUT_ENV_VAR} must be > 0, got {value}")
    return value


class SimAborted(RuntimeError):
    """Raised inside rank bodies when the simulation is torn down."""


class SpmdFailure(RuntimeError):
    """Raised by ``run_spmd`` when a rank body failed.

    Subclasses ``RuntimeError`` with the historical message format, but
    additionally carries the failing rank, the original exception, and
    the partial :class:`~repro.mpsim.stats.SimStats` at abort time —
    which a recovery driver (see :mod:`repro.faults`) needs to restart
    the run from a checkpoint with a continuous virtual timeline.

    Pickles with all three attributes intact (the default exception
    reduction would replay ``__init__`` with the formatted *message*,
    not the original arguments) — process workers ship failures to the
    coordinator over a pipe, so this is load-bearing for the
    ``processes`` backend and a latent bug for any other consumer.
    """

    def __init__(self, rank: int, exc: BaseException, stats: SimStats):
        super().__init__(f"SPMD rank {rank} failed: {exc!r}")
        self.rank = rank
        self.exc = exc
        self.stats = stats

    def __reduce__(self):
        return (SpmdFailure, (self.rank, self.exc, self.stats))


class CollectiveCostModel:
    """Timing model consulted by the engine at every collective.

    Subclasses override :meth:`cost` (and optionally :meth:`p2p_cost`).
    The default implementation charges nothing, i.e. collectives act as
    pure synchronization points in virtual time.
    """

    def cost(self, kind: str, parties: int, max_send_words: float, max_recv_words: float) -> float:
        """Seconds from last arrival to completion of one collective call."""
        return 0.0

    def p2p_cost(self, words: float) -> float:
        """Seconds for one point-to-point/pairwise-exchange message."""
        return 0.0


class ZeroCostModel(CollectiveCostModel):
    """Explicit name for the do-not-time model."""


@dataclass
class SpmdResult:
    """Return value of ``run_spmd``."""

    returns: list[Any]
    stats: SimStats

    def __iter__(self):
        return iter(self.returns)

    def __getitem__(self, rank: int) -> Any:
        return self.returns[rank]


class GroupBase:
    """Membership bookkeeping shared by every backend's group state.

    A group is one communicator's worth of ranks (the world, or a
    ``split`` product).  ``members`` maps group rank -> global rank;
    backends extend this with their rendezvous state (a barrier, arrival
    counters, a wire id, ...).
    """

    __slots__ = ("members", "size")

    def __init__(self, members: Sequence[int]):
        self.members = list(members)
        self.size = len(self.members)


class EngineBase:
    """Backend-neutral engine state: clocks, stats, groups, teardown flags.

    Subclasses must provide the scheduling half of the
    ``ExecutionEngine`` contract — ``collective``, ``mailbox_put``,
    ``mailbox_get``, ``abort`` — and may override :meth:`_make_group`
    to attach backend-specific rendezvous state.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: CollectiveCostModel | None = None,
        timeout: float | None = None,
        record_peers: bool = False,
        record_timeline: bool = False,
        base_time: float = 0.0,
    ):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if base_time < 0:
            raise ValueError(f"base_time must be >= 0, got {base_time}")
        self.nranks = nranks
        self.cost_model = cost_model if cost_model is not None else ZeroCostModel()
        self.timeout = default_timeout() if timeout is None else timeout
        #: When set, per-destination traffic is recorded in RankStats
        #: (the rank-to-rank heat-map data of Figure 4-style analyses).
        self.record_peers = record_peers
        #: When set, every collective leaves a TimelineEvent on its rank
        #: (render with repro.mpsim.timeline.render_timeline).
        self.record_timeline = record_timeline
        #: Virtual time all rank clocks start at.  Zero for fresh runs; a
        #: checkpoint-restart attempt resumes where the failed one aborted.
        self.base_time = base_time
        self.clocks = [RankClock(time=base_time) for _ in range(nranks)]
        self.stats = [RankStats() for _ in range(nranks)]
        self._groups: list[Any] = []
        self._errors: list[tuple[int, BaseException]] = []
        self.world = self.register_group(range(nranks))

    def _make_group(self, members: Sequence[int]):
        return GroupBase(members)

    def register_group(self, members: Sequence[int]):
        state = self._make_group(members)
        self._groups.append(state)
        return state

    def sim_stats(self) -> SimStats:
        return SimStats(clocks=self.clocks, comm=self.stats)

    def first_failure(self) -> tuple[int, BaseException] | None:
        """The first recorded ``(rank, exception)``, or ``None``."""
        return self._errors[0] if self._errors else None
