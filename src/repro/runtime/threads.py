"""Thread-based execution backend (the historical SPMD engine).

One OS thread per simulated rank; collectives rendezvous on a
``threading.Barrier`` and a timeout converts a genuine deadlock into an
abort.  The collective protocol is a three-phase barrier dance:

1. *fill* — every member deposits its item in its slot;
2. *combine* — the rank elected by the barrier evaluates the caller's
   ``reduce`` over the full slot list;
3. *drain* — members read the shared result, and a final barrier
   guarantees the slots may be reused for the next call.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import Any

from repro.runtime.base import (
    CollectiveCostModel,
    EngineBase,
    GroupBase,
    SimAborted,
    SpmdFailure,
    SpmdResult,
)

#: Backend name as selected by ``REPRO_RUNTIME`` / ``runtime=``.
name = "threads"


class _GroupState(GroupBase):
    """Shared state of one communicator group (world or split)."""

    __slots__ = ("barrier", "slots", "result")

    def __init__(self, members: Sequence[int]):
        super().__init__(members)
        self.barrier = threading.Barrier(self.size)
        self.slots: list[Any] = [None] * self.size
        self.result: Any = None


class ThreadsEngine(EngineBase):
    """Owns clocks, stats, the group registry, and abort machinery."""

    def __init__(
        self,
        nranks: int,
        cost_model: CollectiveCostModel | None = None,
        timeout: float | None = None,
        record_peers: bool = False,
        record_timeline: bool = False,
        base_time: float = 0.0,
    ):
        self._lock = threading.Lock()
        self._aborted = threading.Event()
        self._mailboxes: dict[tuple[int, int], list] = {}
        self._mailbox_cv = threading.Condition()
        super().__init__(
            nranks,
            cost_model=cost_model,
            timeout=timeout,
            record_peers=record_peers,
            record_timeline=record_timeline,
            base_time=base_time,
        )

    def _make_group(self, members: Sequence[int]) -> _GroupState:
        return _GroupState(members)

    def register_group(self, members: Sequence[int]) -> _GroupState:
        state = self._make_group(members)
        with self._lock:
            self._groups.append(state)
        return state

    def abort(self, rank: int, exc: BaseException) -> None:
        with self._lock:
            self._errors.append((rank, exc))
        self._aborted.set()
        with self._lock:
            groups = list(self._groups)
        for group in groups:
            group.barrier.abort()
        with self._mailbox_cv:
            self._mailbox_cv.notify_all()

    def barrier_wait(self, state: _GroupState) -> int:
        """Wait on a group barrier, translating breakage into SimAborted.

        A barrier broken *without* a recorded abort means a timeout — some
        rank never arrived (deadlock or divergent collective sequence);
        that is an error in its own right and must not pass silently.
        """
        if self._aborted.is_set():
            raise SimAborted("simulation aborted")
        try:
            return state.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            if not self._aborted.is_set():
                self.abort(
                    -1,
                    TimeoutError(
                        f"collective timed out after {self.timeout}s — a rank "
                        "never arrived (deadlock or mismatched collectives)"
                    ),
                )
            raise SimAborted("simulation aborted (broken barrier)") from None

    def collective(
        self,
        state: _GroupState,
        rank: int,
        item: Any,
        reduce: Callable[[list], Any],
    ) -> Any:
        state.slots[rank] = item
        if self.barrier_wait(state) == 0:
            state.result = reduce(list(state.slots))
        self.barrier_wait(state)
        result = state.result
        self.barrier_wait(state)
        return result

    # -- point-to-point ----------------------------------------------------
    def mailbox_put(self, src: int, dst: int, item: Any) -> None:
        with self._mailbox_cv:
            self._mailboxes.setdefault((src, dst), []).append(item)
            self._mailbox_cv.notify_all()

    def mailbox_get(self, src: int, dst: int) -> Any:
        deadline = threading.TIMEOUT_MAX
        with self._mailbox_cv:
            while True:
                if self._aborted.is_set():
                    raise SimAborted("simulation aborted")
                box = self._mailboxes.get((src, dst))
                if box:
                    return box.pop(0)
                if not self._mailbox_cv.wait(timeout=min(self.timeout, deadline)):
                    self.abort(
                        dst,
                        TimeoutError(
                            f"recv timed out after {self.timeout}s waiting "
                            f"for a message {src}->{dst}"
                        ),
                    )
                    raise SimAborted(f"recv timeout waiting for message {src}->{dst}")


def run_spmd(
    nranks: int,
    fn: Callable,
    *args: Any,
    cost_model: CollectiveCostModel | None = None,
    timeout: float | None = None,
    record_peers: bool = False,
    record_timeline: bool = False,
    base_time: float = 0.0,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` rank threads.

    Every rank executes in its own thread against a shared
    :class:`ThreadsEngine`.  Exceptions raised by any rank abort the
    whole run and are re-raised (the first one, with the rank noted) in
    the caller.
    """
    from repro.mpsim.communicator import Communicator

    engine = ThreadsEngine(
        nranks,
        cost_model=cost_model,
        timeout=timeout,
        record_peers=record_peers,
        record_timeline=record_timeline,
        base_time=base_time,
    )
    returns: list[Any] = [None] * nranks
    threads: list[threading.Thread] = []

    def worker(rank: int) -> None:
        comm = Communicator(engine, engine.world, rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except SimAborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - must tear down peers
            engine.abort(rank, exc)

    for rank in range(nranks):
        thread = threading.Thread(
            target=worker, args=(rank,), name=f"spmd-rank-{rank}", daemon=True
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()

    failure = engine.first_failure()
    if failure is not None:
        rank, exc = failure
        raise SpmdFailure(rank, exc, engine.sim_stats()) from exc
    return SpmdResult(returns=returns, stats=engine.sim_stats())
