"""Deterministic fault schedules and retry policies.

A fault *plan* is a finite list of scheduled :class:`FaultEvent`\\ s plus
a seed.  Nothing in the subsystem draws entropy at runtime: every fault
fires at a position fixed by the plan (victim rank, BFS level, collective
site, retry attempt), so a run with a given ``(seed, spec)`` is exactly
reproducible — the property the differential test battery asserts.

The textual spec grammar (CLI ``--fault-spec``) is ``;``-separated
events, each ``kind:key=value,key=value,...``::

    crash:rank=1,level=3                       # permanent rank loss
    timeout:level=2,site=alltoallv             # collective never completes
    corrupt:rank=0,level=2                     # rank 0's receive buffer damaged
    delay:rank=2,level=1,seconds=1e-3          # straggler delay
    seed=42                                    # plan seed (optional segment)

e.g. ``"crash:rank=1,level=3;delay:rank=0,level=2,seconds=1e-3;seed=7"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: All schedulable fault kinds.
KINDS = ("crash", "timeout", "corrupt", "delay")
#: Kinds absorbed by the channel retry loop (vs. permanent / local).
TRANSIENT_KINDS = ("timeout", "corrupt")
#: Collective sites transient faults can target (``*`` = either).
SITES = ("alltoallv", "allgatherv", "*")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        ``crash`` (permanent rank loss at the start of ``level``),
        ``timeout`` (one collective attempt at ``level`` never
        completes), ``corrupt`` (rank ``rank``'s received wire buffer is
        damaged at ``level``), or ``delay`` (rank ``rank`` stalls for
        ``seconds`` of virtual time at the start of ``level``).
    rank:
        Victim global rank.  Required for crash/corrupt/delay; ignored
        for timeout (a timed-out collective stalls every participant).
    level:
        BFS level (>= 1) the fault fires at.
    site:
        For transient kinds: which collective family the fault hits
        (``alltoallv``, ``allgatherv``, or ``*`` for the level's first).
    seconds:
        Straggler duration for ``delay``.
    attempt:
        For transient kinds: which retry attempt the fault disrupts
        (0 = the initial try), letting schedules stack repeated faults
        on one collective up to retry exhaustion.
    """

    kind: str
    rank: int = -1
    level: int = 1
    site: str = "*"
    seconds: float = 0.0
    attempt: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if self.level < 1:
            raise ValueError(f"fault level must be >= 1, got {self.level}")
        if self.kind in ("crash", "corrupt", "delay") and self.rank < 0:
            raise ValueError(f"{self.kind} fault requires rank >= 0")
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")
        if self.attempt < 0:
            raise ValueError(f"fault attempt must be >= 0, got {self.attempt}")

    def as_dict(self) -> dict:
        """JSON-safe form for run reports."""
        out = {"kind": self.kind, "level": self.level}
        if self.kind != "timeout":
            out["rank"] = self.rank
        if self.kind in TRANSIENT_KINDS:
            out["site"] = self.site
            out["attempt"] = self.attempt
        if self.kind == "delay":
            out["seconds"] = self.seconds
        return out


class FaultPlan:
    """A deterministic fault schedule shared by every rank of a run.

    The plan is consulted identically by all ranks (pure queries keyed on
    level/site/attempt), which keeps the lockstep collective sequence
    symmetric — no rank ever retries a collective its peers committed.
    ``fired`` records permanently-consumed events (crashes the recovery
    driver has already restarted past), so a restarted attempt replays
    the same levels without re-dying.
    """

    def __init__(self, events=(), seed: int = 0):
        self.events: tuple[FaultEvent, ...] = tuple(events)
        self.seed = int(seed)
        self.fired: set[int] = set()

    def copy(self) -> FaultPlan:
        """A fresh plan with the same schedule and nothing fired yet."""
        return FaultPlan(self.events, seed=self.seed)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({list(self.events)!r}, seed={self.seed})"

    def mark_fired(self, index: int) -> None:
        """Permanently consume an event (the driver, after a restart)."""
        self.fired.add(index)

    def crash_at_level(self, level: int) -> tuple[int, FaultEvent] | None:
        """The first unfired crash scheduled at ``level``, if any."""
        for index, event in enumerate(self.events):
            if (
                event.kind == "crash"
                and event.level == level
                and index not in self.fired
            ):
                return index, event
        return None

    def delay_at(self, rank: int, level: int) -> tuple[int, FaultEvent] | None:
        """The delay hitting ``rank`` at the start of ``level``, if any."""
        for index, event in enumerate(self.events):
            if event.kind == "delay" and event.rank == rank and event.level == level:
                return index, event
        return None

    def transients_at(self, site: str, level: int):
        """All timeout/corrupt events matching ``(site, level)``, in order."""
        for index, event in enumerate(self.events):
            if (
                event.kind in TRANSIENT_KINDS
                and event.level == level
                and event.site in ("*", site)
            ):
                yield index, event

    def max_rank(self) -> int:
        """Largest rank any event names (-1 if none do)."""
        return max((e.rank for e in self.events), default=-1)

    def spec(self) -> str:
        """Round-trippable textual form (the ``--fault-spec`` grammar)."""
        parts = []
        for event in self.events:
            fields = []
            if event.kind != "timeout":
                fields.append(f"rank={event.rank}")
            fields.append(f"level={event.level}")
            if event.kind in TRANSIENT_KINDS:
                if event.site != "*":
                    fields.append(f"site={event.site}")
                if event.attempt:
                    fields.append(f"attempt={event.attempt}")
            if event.kind == "delay":
                fields.append(f"seconds={event.seconds:g}")
            parts.append(f"{event.kind}:" + ",".join(fields))
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)


_FIELD_PARSERS = {
    "rank": int,
    "level": int,
    "site": str,
    "seconds": float,
    "attempt": int,
}


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the ``--fault-spec`` grammar into a :class:`FaultPlan`."""
    events: list[FaultEvent] = []
    seed = 0
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if part.startswith("seed="):
            seed = int(part[len("seed=") :])
            continue
        kind, sep, rest = part.partition(":")
        kind = kind.strip()
        if not sep and kind not in KINDS:
            raise ValueError(
                f"bad fault spec segment {part!r}: expected 'kind:key=value,...'"
            )
        fields: dict = {}
        if rest.strip():
            for item in rest.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or key not in _FIELD_PARSERS:
                    raise ValueError(
                        f"bad fault spec field {item!r} in {part!r}; "
                        f"known keys: {sorted(_FIELD_PARSERS)}"
                    )
                fields[key] = _FIELD_PARSERS[key](value.strip())
        events.append(FaultEvent(kind=kind, **fields))
    return FaultPlan(events, seed=seed)


def resolve_fault_plan(faults) -> FaultPlan:
    """Coerce user input into a *fresh* plan instance.

    Strings are parsed; plans are copied so repeated runs with the same
    object (or the same spec string) start from identical unfired state —
    the per-search independence ``run_graph500`` and the differential
    determinism tests rely on.
    """
    if faults is None:
        return FaultPlan()
    if isinstance(faults, str):
        return parse_fault_spec(faults)
    if isinstance(faults, FaultEvent):
        return FaultPlan((faults,))
    if isinstance(faults, FaultPlan):
        return faults.copy()
    raise TypeError(
        f"faults must be a spec string, FaultEvent, FaultPlan, or None; "
        f"got {type(faults).__name__}"
    )


def random_fault_plan(
    seed: int,
    nranks: int,
    max_level: int,
    n_transients: int = 2,
    crash: bool = True,
    delay: bool = True,
) -> FaultPlan:
    """Draw a reproducible random schedule (the property-test generator).

    At most one crash (recovery restarts are exercised one loss at a
    time), ``n_transients`` timeout/corrupt events, and an optional
    straggler delay, all placed uniformly over ranks and levels by
    ``numpy``'s seeded generator.
    """
    rng = np.random.default_rng(seed)
    events: list[FaultEvent] = []
    if crash:
        events.append(
            FaultEvent(
                kind="crash",
                rank=int(rng.integers(nranks)),
                level=int(rng.integers(1, max_level + 1)),
            )
        )
    for _ in range(n_transients):
        kind = str(rng.choice(TRANSIENT_KINDS))
        events.append(
            FaultEvent(
                kind=kind,
                rank=int(rng.integers(nranks)),
                level=int(rng.integers(1, max_level + 1)),
                site=str(rng.choice(SITES)),
                attempt=int(rng.integers(2)),
            )
        )
    if delay:
        events.append(
            FaultEvent(
                kind="delay",
                rank=int(rng.integers(nranks)),
                level=int(rng.integers(1, max_level + 1)),
                seconds=float(rng.uniform(1e-5, 1e-3)),
            )
        )
    return FaultPlan(events, seed=seed)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff pricing for transient collective faults.

    All durations are expressed in units of the machine's network latency
    (the alpha of the alpha-beta model): ``timeout_factor`` models how
    long a rank waits before declaring the collective dead, and the
    ``attempt``-th retry backs off ``backoff_factor * backoff_growth **
    attempt`` latencies before reissuing.  With no machine model the
    charges are zero, but the retries (and their counters) still happen.
    """

    max_retries: int = 3
    timeout_factor: float = 1000.0
    backoff_factor: float = 100.0
    backoff_growth: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def penalty_seconds(self, machine, attempt: int) -> float:
        """Virtual seconds lost to one failed attempt (detect + back off)."""
        if machine is None:
            return 0.0
        alpha = machine.net_latency
        return alpha * (
            self.timeout_factor
            + self.backoff_factor * self.backoff_growth**attempt
        )
