"""Level-granular checkpoint/restart for the level-synchronous families.

The BFS families are lockstep: every rank finishes level L's termination
``Allreduce`` before any rank starts level L+1, so a snapshot taken by
each rank right after that collective is globally consistent — no
in-flight frontier candidates exist at a level boundary.  On a permanent
rank loss the driver restarts the whole SPMD run from the last level
every rank checkpointed and replays forward; because the snapshot holds
the complete per-rank traversal state (``levels``, ``parents``, the
frontier, and the sieve's dedup epoch), the replay is bit-identical to
the fault-free run.

Cost model: saving charges ``stream(words)`` of the alpha-beta memory
model per rank (a serialize-to-buffer pass over the state), restoring
charges the same for the read-back; both appear as ``checkpoint`` /
``restore`` spans and ``checkpoint_words`` / ``restore_words`` counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


def _words(value) -> float:
    """Snapshot size in 8-byte words (bool arrays pack 8 flags/word)."""
    if isinstance(value, np.ndarray):
        return value.size * value.itemsize / 8.0
    return 1.0


class CheckpointStore:
    """In-memory store of per-(level, rank) snapshots for one run.

    Thread-safe: every simulated rank commits its own snapshot from its
    own thread.  A level counts as *complete* only when all ``nranks``
    snapshots for it exist — a crash can never leave a torn restore
    point, because each rank's save is pure local work it always
    finishes before observing the abort at the next level boundary.
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self._lock = threading.Lock()
        self._levels: dict[int, dict[int, dict]] = {}

    def save(self, rank: int, level: int, snapshot: dict) -> None:
        with self._lock:
            self._levels.setdefault(level, {})[rank] = snapshot

    def get(self, level: int, rank: int) -> dict:
        with self._lock:
            return self._levels[level][rank]

    def latest_complete(self) -> int | None:
        """Deepest level every rank has checkpointed (None if none)."""
        with self._lock:
            complete = [
                level
                for level, by_rank in self._levels.items()
                if len(by_rank) == self.nranks
            ]
        return max(complete, default=None)

    def levels(self) -> list[int]:
        with self._lock:
            return sorted(self._levels)


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint cadence for one run: snapshot every ``every`` levels."""

    store: CheckpointStore
    every: int = 1

    def __post_init__(self):
        if self.every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {self.every}")

    def due(self, level: int) -> bool:
        return level % self.every == 0


def save_checkpoint(
    checkpoint: CheckpointConfig, comm, charger, obs, level: int, state: dict
) -> None:
    """Snapshot one rank's traversal state after finishing ``level``.

    ``state`` maps names to arrays/scalars; arrays are copied so the
    snapshot is immune to the live run mutating them in place.
    """
    snapshot = {
        key: np.array(value, copy=True) if isinstance(value, np.ndarray) else value
        for key, value in state.items()
    }
    words = float(sum(_words(value) for value in snapshot.values()))
    with obs.span("checkpoint", level=level, words=words):
        charger.stream(words, parallel=False, checkpoint_words=words)
        charger.count(checkpoints=1.0)
        checkpoint.store.save(comm.global_rank, level, snapshot)


def restore_checkpoint(
    checkpoint: CheckpointConfig, comm, charger, obs, resume_level: int
) -> dict:
    """Fetch and charge this rank's snapshot of ``resume_level``."""
    snapshot = checkpoint.store.get(resume_level, comm.global_rank)
    words = float(sum(_words(value) for value in snapshot.values()))
    with obs.span("restore", level=resume_level, words=words):
        charger.stream(words, parallel=False, restore_words=words)
        charger.count(restores=1.0)
    return snapshot
