"""Fault injection, retry, and checkpoint-restart (``repro.faults``).

The resilience layer of the reproduction: deterministic, seeded fault
schedules fired against the simulated BFS runs — rank crashes at a
chosen level, collective timeouts, corrupted wire buffers, straggler
delays — all charged in virtual time, plus the machinery that survives
them:

* :mod:`~repro.faults.spec` — :class:`FaultPlan` schedules, the
  ``--fault-spec`` grammar, and :class:`RetryPolicy` (timeout/backoff
  priced by the alpha-beta model);
* :mod:`~repro.faults.injection` — per-rank fault firing with symmetric
  retry decisions, and the typed failure hierarchy;
* :mod:`~repro.faults.checkpoint` — level-granular checkpoint/restart
  exploiting the lockstep structure of level-synchronous BFS.

Typical flow::

    result = repro.run_bfs(graph, src, "1d", nprocs=4, machine="hopper",
                           faults="crash:rank=1,level=3",
                           checkpoint_every=1)
    result.meta["faults"]       # attempts, restores, retry counters

Transient faults (timeout/corrupt) are absorbed by the comm channel's
retry loop; a permanent crash ends the attempt (every rank returns a
crash marker) and the driver in ``run_bfs`` restarts the run from the
last complete checkpoint, replaying to parents bit-identical to the
fault-free traversal.  See ``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    restore_checkpoint,
    save_checkpoint,
)
from repro.faults.injection import (
    NULL_RANK_FAULTS,
    FaultError,
    NullRankFaults,
    RankCrashError,
    RankFaults,
    RetryExhaustedError,
    UndetectedCorruptionError,
    corrupt_pieces,
    resolve_rank_faults,
)
from repro.faults.spec import (
    KINDS,
    SITES,
    TRANSIENT_KINDS,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    parse_fault_spec,
    random_fault_plan,
    resolve_fault_plan,
)


@dataclass(frozen=True)
class FaultContext:
    """What ``run_bfs`` threads into the rank bodies of a faulted run."""

    plan: FaultPlan
    retry: RetryPolicy


__all__ = [
    "KINDS",
    "SITES",
    "TRANSIENT_KINDS",
    "FaultContext",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "parse_fault_spec",
    "random_fault_plan",
    "resolve_fault_plan",
    "NULL_RANK_FAULTS",
    "FaultError",
    "NullRankFaults",
    "RankCrashError",
    "RankFaults",
    "RetryExhaustedError",
    "UndetectedCorruptionError",
    "corrupt_pieces",
    "resolve_rank_faults",
    "CheckpointConfig",
    "CheckpointStore",
    "restore_checkpoint",
    "save_checkpoint",
]
