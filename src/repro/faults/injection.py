"""Per-rank fault firing: crashes, stragglers, transient absorption.

Every rank of a faulted run holds a :class:`RankFaults` view of the
shared :class:`~repro.faults.spec.FaultPlan`.  All decisions are pure
functions of ``(plan, level, site, attempt)`` consulted identically by
every rank, so the lockstep collective sequence stays symmetric: either
all ranks commit an attempt or all ranks absorb the fault and retry.

Failure detection is modeled at level granularity: the crash of rank R
at level L is observed by *every* rank at the level-L boundary — the
termination ``Allreduce`` that ends each level of the level-synchronous
BFS doubles as the failure detector.  Each rank catches its own
:class:`RankCrashError` and returns a crash marker instead of aborting
the engine, so the SPMD run finishes normally and every clock, span,
checkpoint save, and the restart base time is deterministic — where
letting peers race into level L until a barrier breaks would not be.
"""

from __future__ import annotations

import numpy as np

from repro.faults.spec import FaultEvent, FaultPlan, RetryPolicy
from repro.obs.metrics import NULL_RANK_METRICS


class FaultError(RuntimeError):
    """Base class for injected-fault failures."""


class RankCrashError(FaultError):
    """A scheduled permanent rank loss fired.

    Raised by :meth:`RankFaults.on_level_start` on every rank at the
    crash level's boundary (cooperative detection, see module
    docstring).  The rank bodies catch it and return a ``"crashed"``
    marker; the recovery driver in ``run_bfs`` then restarts from the
    last complete checkpoint, or re-raises it when none exists.
    """

    def __init__(self, rank: int, level: int, event_index: int):
        super().__init__(f"injected crash: rank {rank} at level {level}")
        self.rank = rank
        self.level = level
        self.event_index = event_index

    def __reduce__(self):
        # Crash markers ride in rank result dicts across process
        # boundaries; the default exception reduction would replay
        # ``__init__`` with the formatted message and lose the fields.
        return (RankCrashError, (self.rank, self.level, self.event_index))


class RetryExhaustedError(FaultError):
    """A collective kept faulting past the policy's retry budget.

    Deliberately *not* recovered by the driver — a fault schedule denser
    than the retry budget is a permanent outage, and auto-restarting it
    would loop forever.  The run aborts cleanly instead.
    """

    def __init__(self, site: str, level: int, attempts: int):
        super().__init__(
            f"retries exhausted: {site} at level {level} "
            f"after {attempts} attempts"
        )
        self.site = site
        self.level = level
        self.attempts = attempts

    def __reduce__(self):
        return (RetryExhaustedError, (self.site, self.level, self.attempts))


class UndetectedCorruptionError(FaultError):
    """An injected wire corruption decoded without a CodecError.

    Raised by the channel's self-check: if this escapes, a codec is
    silently decoding damaged buffers and the retry path is unsound.
    """


#: Sentinel added to the top of the agreed vertex range when smashing a
#: word, guaranteeing the value is out of range for any real buffer.
_OUT_OF_RANGE_OFFSET = 1 << 40


def corrupt_pieces(pieces, mode: str):
    """Deterministically damage one received piece.

    ``mode="truncate"`` drops the last word of the largest piece with at
    least two words (structurally detectable by every codec's length and
    count checks); ``mode="smash"`` overwrites the *first* word of the
    largest non-empty piece with an out-of-range sentinel (detectable in
    formats whose first word is a header, tag, or range-checked id —
    the sparse vertex-list sites, where truncation would be silent).

    Returns ``(index, corrupted_copy)`` or ``None`` when nothing on the
    wire is corruptible this attempt.
    """
    sizes = [int(np.asarray(p).size) for p in pieces]
    min_size = 1 if mode == "smash" else 2
    candidates = [i for i, size in enumerate(sizes) if size >= min_size]
    if not candidates:
        return None
    index = max(candidates, key=lambda i: (sizes[i], -i))
    piece = np.array(pieces[index], dtype=np.int64, copy=True)
    if mode == "smash":
        piece[0] = np.iinfo(np.int64).max - _OUT_OF_RANGE_OFFSET
    else:
        piece = piece[:-1]
    return index, piece


class RankFaults:
    """One rank's live handle on the run's fault plan.

    Owns the rank-local transient ``used`` set (consistent across ranks
    because every rank executes the identical channel-collective
    sequence) and charges fault costs — straggler delays, timeout
    detection, retry backoff — to the rank clock's ``fault_time``.
    """

    enabled = True

    def __init__(
        self, plan: FaultPlan, retry: RetryPolicy, comm, machine, obs,
        metrics=NULL_RANK_METRICS,
    ):
        self.plan = plan
        self.retry = retry
        self.comm = comm
        self.machine = machine
        self.obs = obs
        #: Per-rank metrics handle; passive (never charges the clocks).
        self.metrics = metrics
        self._used: set[int] = set()

    # -- level boundary ----------------------------------------------------
    def on_level_start(self, level: int) -> None:
        """Fire crash/delay events scheduled for the start of ``level``."""
        hit = self.plan.crash_at_level(level)
        if hit is not None:
            index, event = hit
            self.obs.instant(
                "fault-crash", level=level, victim=event.rank
            )
            self.metrics.inc("fault_crashes")
            raise RankCrashError(event.rank, level, index)
        hit = self.plan.delay_at(self.comm.global_rank, level)
        if hit is not None:
            index, event = hit
            if index not in self._used:
                self._used.add(index)
                with self.obs.span("fault-delay", level=level, seconds=event.seconds):
                    seconds = event.seconds if self.machine is not None else 0.0
                    self.comm.clock.charge_fault(seconds, fault_delays=1.0)
                    self.metrics.inc("fault_delays")
                    self.metrics.inc("fault_seconds", seconds, kind="delay")

    # -- transient faults on collectives -----------------------------------
    def poll(self, site: str, level: int | None, attempt: int):
        """The transient event disrupting ``(site, level, attempt)``, if any.

        Pure query — identical on every rank — so the decision to retry
        a collective is made symmetrically.
        """
        if level is None:
            return None
        for index, event in self.plan.transients_at(site, level):
            if index not in self._used and event.attempt == attempt:
                return index, event
        return None

    def absorb(self, index: int, event: FaultEvent, site: str, level: int, attempt: int) -> None:
        """Charge one failed attempt and arm the retry (all ranks alike)."""
        self._used.add(index)
        if attempt >= self.retry.max_retries:
            raise RetryExhaustedError(site, level, attempt + 1)
        with self.obs.span(
            "fault-retry", level=level, kind=event.kind, site=site, attempt=attempt
        ):
            penalty = self.retry.penalty_seconds(self.machine, attempt)
            self.comm.clock.charge_fault(penalty, fault_retries=1.0)
            self.metrics.inc("fault_retries", 1.0, kind=event.kind, site=site)
            self.metrics.inc("fault_seconds", penalty, kind=event.kind)

    def is_corruption_victim(self, event: FaultEvent) -> bool:
        return self.comm.global_rank == event.rank


class NullRankFaults:
    """No-op stand-in: the fault-free fast path (zero charges, ever)."""

    enabled = False
    __slots__ = ()

    def on_level_start(self, level: int) -> None:
        return None

    def poll(self, site: str, level: int | None, attempt: int):
        return None


NULL_RANK_FAULTS = NullRankFaults()


def resolve_rank_faults(
    faults, comm, machine, obs, metrics=NULL_RANK_METRICS
) -> RankFaults | NullRankFaults:
    """Build a rank's fault handle (the null object when unfaulted).

    ``faults`` is the :class:`~repro.faults.FaultContext` threaded from
    ``run_bfs`` into the rank bodies, or ``None``.
    """
    if faults is None:
        return NULL_RANK_FAULTS
    return RankFaults(faults.plan, faults.retry, comm, machine, obs, metrics)
