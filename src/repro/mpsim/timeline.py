"""Virtual-time timelines: record and render per-rank collective spans.

When a run is launched with ``record_timeline=True`` every collective
leaves an event ``(kind, t_arrive, t_complete, words)`` on its rank, and
:func:`render_timeline` draws the run as an ASCII Gantt chart — the
fastest way to *see* where a schedule loses time (e.g. Figure 4's
off-diagonal ranks parked inside the fold's all-to-all):

    rank 0 |====a===g..aaa....r|
    rank 1 |..==a===g.aaaa...r.|

Letters mark time inside a collective (``a`` = alltoallv, ``g`` =
allgatherv — also the direction-optimizing bottom-up expand's frontier
bitmap broadcast, ``r`` = allreduce, ``x`` = exchange, ``b`` = barrier,
``o`` = other); ``.`` is local computation, and the span between arrival
and the collective's completion includes any waiting for slower ranks.
A direction-optimizing 1D timeline is easy to read off the glyphs: dense
bottom-up middle levels show short ``g`` spans where top-down levels
would park every rank in a wide ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpsim.stats import SimStats

#: Collective kind -> timeline glyph.
GLYPHS = {
    "alltoallv": "a",
    "allgatherv": "g",
    "allreduce": "r",
    "exchange": "x",
    "barrier": "b",
    "bcast": "c",
    "gather": "v",
    "scatter": "s",
    "p2p": "p",
    "other": "o",  # fallback for kinds without a dedicated glyph
}


@dataclass(frozen=True)
class TimelineEvent:
    """One collective span on one rank's virtual clock."""

    kind: str
    t_arrive: float
    t_complete: float
    words: float

    @property
    def duration(self) -> float:
        return self.t_complete - self.t_arrive


def render_timeline(
    stats: SimStats, width: int = 72, ranks: list[int] | None = None
) -> str:
    """ASCII Gantt chart of a run recorded with ``record_timeline=True``.

    Each rank gets one row spanning ``[0, makespan]`` in virtual time;
    collective spans are drawn with their kind's glyph, everything else
    (local computation) with ``.``.
    """
    makespan = stats.makespan
    if makespan <= 0:
        raise ValueError(
            "nothing to render: run with a cost model and record_timeline=True"
        )
    if ranks is None:
        ranks = list(range(stats.nranks))
    label_width = len(f"rank {max(ranks)}")
    lines = []
    any_events = False
    for rank in ranks:
        row = ["."] * width
        for event in getattr(stats.comm[rank], "events", []):
            any_events = True
            glyph = GLYPHS.get(event.kind, GLYPHS["other"])
            lo = int(event.t_arrive / makespan * (width - 1))
            hi = max(lo, int(event.t_complete / makespan * (width - 1)))
            for col in range(lo, hi + 1):
                row[col] = glyph
        label = f"rank {rank}".rjust(label_width)
        lines.append(f"{label} |{''.join(row)}|")
    if not any_events:
        raise ValueError(
            "no timeline events recorded: pass record_timeline=True to run_spmd"
        )
    legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items())
    lines.append(f"{' ' * label_width}  0{' ' * (width - 10)}{makespan:.3g}s")
    lines.append(f"legend: {legend}, .=compute")
    return "\n".join(lines)
