"""Thread-based SPMD engine with virtual-time accounting.

:func:`run_spmd` launches one thread per simulated rank and hands each a
:class:`~repro.mpsim.communicator.Communicator`.  Collectives move real
buffers; completion times are produced by a pluggable
:class:`CollectiveCostModel` so the same functional execution can be timed
as if it ran on Franklin, Hopper, or not timed at all.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.mpsim.clock import RankClock
from repro.mpsim.stats import RankStats, SimStats

#: Default seconds a rank may wait at a barrier before the run is aborted.
#: Generous, because functional simulations with hundreds of ranks can make
#: slow progress under the GIL; a genuine deadlock still surfaces.
DEFAULT_TIMEOUT = 600.0


class SimAborted(RuntimeError):
    """Raised inside rank threads when the simulation is torn down."""


class SpmdFailure(RuntimeError):
    """Raised by :func:`run_spmd` when a rank body failed.

    Subclasses ``RuntimeError`` with the historical message format, but
    additionally carries the failing rank, the original exception, and
    the partial :class:`~repro.mpsim.stats.SimStats` at abort time —
    which a recovery driver (see :mod:`repro.faults`) needs to restart
    the run from a checkpoint with a continuous virtual timeline.
    """

    def __init__(self, rank: int, exc: BaseException, stats: SimStats):
        super().__init__(f"SPMD rank {rank} failed: {exc!r}")
        self.rank = rank
        self.exc = exc
        self.stats = stats


class CollectiveCostModel:
    """Timing model consulted by the engine at every collective.

    Subclasses override :meth:`cost` (and optionally :meth:`p2p_cost`).
    The default implementation charges nothing, i.e. collectives act as
    pure synchronization points in virtual time.
    """

    def cost(self, kind: str, parties: int, max_send_words: float, max_recv_words: float) -> float:
        """Seconds from last arrival to completion of one collective call."""
        return 0.0

    def p2p_cost(self, words: float) -> float:
        """Seconds for one point-to-point/pairwise-exchange message."""
        return 0.0


class ZeroCostModel(CollectiveCostModel):
    """Explicit name for the do-not-time model."""


class _GroupState:
    """Shared state of one communicator group (world or split)."""

    __slots__ = ("members", "size", "barrier", "slots", "result")

    def __init__(self, members: Sequence[int]):
        self.members = list(members)
        self.size = len(self.members)
        self.barrier = threading.Barrier(self.size)
        self.slots: list[Any] = [None] * self.size
        self.result: Any = None


class SimEngine:
    """Owns clocks, stats, the group registry, and abort machinery."""

    def __init__(
        self,
        nranks: int,
        cost_model: CollectiveCostModel | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        record_peers: bool = False,
        record_timeline: bool = False,
        base_time: float = 0.0,
    ):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if base_time < 0:
            raise ValueError(f"base_time must be >= 0, got {base_time}")
        self.nranks = nranks
        self.cost_model = cost_model if cost_model is not None else ZeroCostModel()
        self.timeout = timeout
        #: When set, per-destination traffic is recorded in RankStats
        #: (the rank-to-rank heat-map data of Figure 4-style analyses).
        self.record_peers = record_peers
        #: When set, every collective leaves a TimelineEvent on its rank
        #: (render with repro.mpsim.timeline.render_timeline).
        self.record_timeline = record_timeline
        #: Virtual time all rank clocks start at.  Zero for fresh runs; a
        #: checkpoint-restart attempt resumes where the failed one aborted.
        self.base_time = base_time
        self.clocks = [RankClock(time=base_time) for _ in range(nranks)]
        self.stats = [RankStats() for _ in range(nranks)]
        self._lock = threading.Lock()
        self._groups: list[_GroupState] = []
        self._aborted = threading.Event()
        self._errors: list[tuple[int, BaseException]] = []
        self._mailboxes: dict[tuple[int, int], list] = {}
        self._mailbox_cv = threading.Condition()
        self.world = self.register_group(range(nranks))

    def register_group(self, members: Sequence[int]) -> _GroupState:
        state = _GroupState(members)
        with self._lock:
            self._groups.append(state)
        return state

    def abort(self, rank: int, exc: BaseException) -> None:
        with self._lock:
            self._errors.append((rank, exc))
        self._aborted.set()
        with self._lock:
            groups = list(self._groups)
        for group in groups:
            group.barrier.abort()
        with self._mailbox_cv:
            self._mailbox_cv.notify_all()

    def barrier_wait(self, state: _GroupState) -> int:
        """Wait on a group barrier, translating breakage into SimAborted.

        A barrier broken *without* a recorded abort means a timeout — some
        rank never arrived (deadlock or divergent collective sequence);
        that is an error in its own right and must not pass silently.
        """
        if self._aborted.is_set():
            raise SimAborted("simulation aborted")
        try:
            return state.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            if not self._aborted.is_set():
                self.abort(
                    -1,
                    TimeoutError(
                        f"collective timed out after {self.timeout}s — a rank "
                        "never arrived (deadlock or mismatched collectives)"
                    ),
                )
            raise SimAborted("simulation aborted (broken barrier)") from None

    # -- point-to-point ----------------------------------------------------
    def mailbox_put(self, src: int, dst: int, item: Any) -> None:
        with self._mailbox_cv:
            self._mailboxes.setdefault((src, dst), []).append(item)
            self._mailbox_cv.notify_all()

    def mailbox_get(self, src: int, dst: int) -> Any:
        deadline = threading.TIMEOUT_MAX
        with self._mailbox_cv:
            while True:
                if self._aborted.is_set():
                    raise SimAborted("simulation aborted")
                box = self._mailboxes.get((src, dst))
                if box:
                    return box.pop(0)
                if not self._mailbox_cv.wait(timeout=min(self.timeout, deadline)):
                    self.abort(
                        dst,
                        TimeoutError(
                            f"recv timed out after {self.timeout}s waiting "
                            f"for a message {src}->{dst}"
                        ),
                    )
                    raise SimAborted(f"recv timeout waiting for message {src}->{dst}")

    def sim_stats(self) -> SimStats:
        return SimStats(clocks=self.clocks, comm=self.stats)


@dataclass
class SpmdResult:
    """Return value of :func:`run_spmd`."""

    returns: list[Any]
    stats: SimStats

    def __iter__(self):
        return iter(self.returns)

    def __getitem__(self, rank: int) -> Any:
        return self.returns[rank]


def run_spmd(
    nranks: int,
    fn: Callable,
    *args: Any,
    cost_model: CollectiveCostModel | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    record_peers: bool = False,
    record_timeline: bool = False,
    base_time: float = 0.0,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Every rank executes in its own thread against a shared
    :class:`SimEngine`.  Exceptions raised by any rank abort the whole run
    and are re-raised (the first one, with the rank noted) in the caller.

    Returns
    -------
    SpmdResult
        Per-rank return values plus the run's :class:`SimStats`.
    """
    from repro.mpsim.communicator import Communicator

    engine = SimEngine(
        nranks,
        cost_model=cost_model,
        timeout=timeout,
        record_peers=record_peers,
        record_timeline=record_timeline,
        base_time=base_time,
    )
    returns: list[Any] = [None] * nranks
    threads: list[threading.Thread] = []

    def worker(rank: int) -> None:
        comm = Communicator(engine, engine.world, rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except SimAborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - must tear down peers
            engine.abort(rank, exc)

    for rank in range(nranks):
        thread = threading.Thread(
            target=worker, args=(rank,), name=f"spmd-rank-{rank}", daemon=True
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()

    if engine._errors:
        rank, exc = engine._errors[0]
        raise SpmdFailure(rank, exc, engine.sim_stats()) from exc
    return SpmdResult(returns=returns, stats=engine.sim_stats())
