"""Back-compat facade over the pluggable execution runtimes.

Historically this module *was* the thread-based SPMD engine.  The
substrate now lives in :mod:`repro.runtime` — backend-neutral pieces in
:mod:`repro.runtime.base`, the thread engine (verbatim) in
:mod:`repro.runtime.threads`, plus deterministic-sequential and
process-parallel siblings — and this module re-exports the historical
names so ``from repro.mpsim.engine import SimEngine, run_spmd, ...``
keeps working unchanged.

:func:`run_spmd` here is the dispatching entry point: it forwards to
the active backend (``REPRO_RUNTIME`` / :func:`repro.runtime.set_runtime`)
unless a ``runtime=`` override names one explicitly.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.runtime import get_backend
from repro.runtime.base import (  # noqa: F401  (historical re-exports)
    DEFAULT_TIMEOUT,
    TIMEOUT_ENV_VAR,
    CollectiveCostModel,
    SimAborted,
    SpmdFailure,
    SpmdResult,
    ZeroCostModel,
    default_timeout,
)
from repro.runtime.threads import ThreadsEngine, _GroupState  # noqa: F401

#: Historical name of the thread engine; code constructing an engine
#: directly (rather than going through ``run_spmd``) gets the threads
#: backend, exactly as before the runtime split.
SimEngine = ThreadsEngine

__all__ = [
    "DEFAULT_TIMEOUT",
    "TIMEOUT_ENV_VAR",
    "CollectiveCostModel",
    "SimAborted",
    "SimEngine",
    "SpmdFailure",
    "SpmdResult",
    "ZeroCostModel",
    "default_timeout",
    "run_spmd",
]


def run_spmd(
    nranks: int,
    fn: Callable,
    *args: Any,
    cost_model: CollectiveCostModel | None = None,
    timeout: float | None = None,
    record_peers: bool = False,
    record_timeline: bool = False,
    base_time: float = 0.0,
    runtime: str | None = None,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Dispatches to the active execution runtime (or ``runtime=`` when
    given): one rank per thread (``threads``), a deterministic
    round-robin scheduler (``sequential``), or one forked worker process
    per rank (``processes``).  All modeled outputs are bit-identical
    across backends; exceptions raised by any rank abort the whole run
    and re-raise as :class:`SpmdFailure` in the caller.

    ``timeout=None`` applies the default policy: ``REPRO_SPMD_TIMEOUT``
    when set, else :data:`DEFAULT_TIMEOUT`.

    Returns
    -------
    SpmdResult
        Per-rank return values plus the run's SimStats.
    """
    backend = get_backend(runtime)
    return backend.run_spmd(
        nranks,
        fn,
        *args,
        cost_model=cost_model,
        timeout=timeout,
        record_peers=record_peers,
        record_timeline=record_timeline,
        base_time=base_time,
        **kwargs,
    )
