"""Simulated MPI runtime: thread-based SPMD execution with virtual time.

This package is the distributed-memory *substrate* of the reproduction.
The paper's algorithms were written against MPI on Cray XT4/XE6 systems;
here they run unmodified (same collectives, same buffers, same bucketing)
against an in-process SPMD engine:

* every simulated rank runs the real algorithm in its own thread,
* collectives (``Alltoallv``, ``Allgatherv``, ``Allreduce``, ...) move real
  NumPy buffers between ranks, so communication **volumes are exact**,
* a per-rank :class:`~repro.mpsim.clock.RankClock` tracks *virtual* time:
  local computation is charged through the paper's alpha-beta memory model
  and collective completion is computed by a pluggable
  :class:`~repro.mpsim.engine.CollectiveCostModel`, so waiting/idling is
  attributed to MPI time exactly the way the paper measures it (Fig. 4).

Entry point: :func:`~repro.mpsim.engine.run_spmd`.
"""

from repro.mpsim.clock import RankClock
from repro.mpsim.communicator import Communicator
from repro.mpsim.engine import (
    CollectiveCostModel,
    SimAborted,
    SimEngine,
    SpmdFailure,
    SpmdResult,
    ZeroCostModel,
    run_spmd,
)
from repro.mpsim.grid import ProcessorGrid, closest_square
from repro.mpsim.stats import RankStats, SimStats
from repro.mpsim.timeline import TimelineEvent, render_timeline

__all__ = [
    "RankClock",
    "Communicator",
    "CollectiveCostModel",
    "ZeroCostModel",
    "SimAborted",
    "SimEngine",
    "SpmdFailure",
    "SpmdResult",
    "run_spmd",
    "ProcessorGrid",
    "closest_square",
    "RankStats",
    "SimStats",
    "TimelineEvent",
    "render_timeline",
]
