"""MPI-style communicator over a pluggable simulation engine.

A collective is one call to the engine's rendezvous primitive: every
member deposits ``(arrival_time, payload)``, and a *reduction* — built
here, evaluated by the engine exactly once per address space — computes
every member's output, completion time (via the engine's cost model),
and transfer share.  Each rank then applies its own slice to its clock
and wire stats locally.  How ranks are scheduled and where the
reduction runs is the backend's business (see :mod:`repro.runtime`).

Because completion times depend only on deterministic virtual clocks and
payload sizes, runs are bit-reproducible regardless of OS scheduling —
and identical across execution backends.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.mpsim import collectives as coll
from repro.mpsim.engine import SimEngine, _GroupState

#: Collective kinds that move no observable payload words.
_CONTROL_KINDS = frozenset({"barrier", "split"})


class Communicator:
    """Handle through which one simulated rank communicates with its group."""

    def __init__(self, engine: SimEngine, state: _GroupState, group_rank: int):
        self.engine = engine
        self._st = state
        self.rank = group_rank
        self.size = state.size
        self.global_rank = state.members[group_rank]
        self.clock = engine.clocks[self.global_rank]
        self.stats = engine.stats[self.global_rank]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Communicator(rank={self.rank}/{self.size}, "
            f"global_rank={self.global_rank})"
        )

    @property
    def members(self) -> list[int]:
        """Global ranks of this group, indexed by group rank."""
        return list(self._st.members)

    # -- local accounting ---------------------------------------------------
    def charge_compute(self, seconds: float, **counters: float) -> None:
        """Advance this rank's virtual clock by local-computation seconds."""
        self.clock.charge_compute(seconds, **counters)

    def count(self, **counters: float) -> None:
        """Record operation counters without advancing the clock."""
        self.clock.count(**counters)

    # -- collective core ----------------------------------------------------
    def _collective(
        self,
        kind: str,
        payload: Any,
        combine: Callable[[list], list],
        completion: Callable[[list[float], list], tuple[list[float], list[float]]] | None = None,
    ) -> Any:
        st = self._st
        engine = self.engine
        arrival = self.clock.time

        def reduce(slots: list) -> tuple[list, list[float], list[float]]:
            arrivals = [slot[0] for slot in slots]
            payloads = [slot[1] for slot in slots]
            outputs = combine(payloads)
            if completion is not None:
                completions, transfers = completion(arrivals, payloads)
            else:
                if kind in _CONTROL_KINDS:
                    max_send = max_recv = 0.0
                    weights = [1.0] * st.size
                else:
                    sends = [
                        coll.sent_words(kind, p, r) for r, p in enumerate(payloads)
                    ]
                    recvs = [
                        coll.recv_words(kind, o, r) for r, o in enumerate(outputs)
                    ]
                    max_send = max(sends)
                    max_recv = max(recvs)
                    # A rank's *transfer* share of the collective is
                    # proportional to its own traffic; the rest of its
                    # elapsed span is waiting (Figure 4's idle metric).
                    peak = max(max(s, r) for s, r in zip(sends, recvs))
                    weights = [
                        (max(s, r) / peak) if peak > 0 else 1.0
                        for s, r in zip(sends, recvs)
                    ]
                cost = engine.cost_model.cost(kind, st.size, max_send, max_recv)
                finish = max(arrivals) + cost
                completions = [finish] * st.size
                transfers = [cost * w for w in weights]
            return outputs, completions, transfers

        outputs, completions, transfers = engine.collective(
            st, self.rank, (arrival, payload), reduce
        )
        out = outputs[self.rank]
        if kind in _CONTROL_KINDS:
            sent = recv = 0.0
        else:
            sent = coll.sent_words(kind, payload, self.rank)
            recv = coll.recv_words(kind, out, self.rank)
        elapsed = completions[self.rank] - arrival
        self.clock.complete_collective(completions[self.rank], transfers[self.rank])
        self.stats.record(kind, sent, recv, elapsed)
        if self.engine.record_timeline and kind not in _CONTROL_KINDS:
            from repro.mpsim.timeline import TimelineEvent

            self.stats.events.append(
                TimelineEvent(kind, arrival, completions[self.rank], sent + recv)
            )
        return out

    # -- collectives ----------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all group members (virtual clocks align to the max)."""
        self._collective("barrier", None, lambda payloads: [None] * len(payloads))

    def alltoallv(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        """Personalized exchange: ``send[j]`` goes to group rank ``j``.

        Returns the per-source list of received buffers.
        """
        if len(send) != self.size:
            raise ValueError(
                f"alltoallv needs {self.size} send buffers, got {len(send)}"
            )
        if self.engine.record_peers:
            for dst, buf in enumerate(send):
                if dst != self.rank and buf is not None:
                    self.stats.peer_words[self._st.members[dst]] += float(
                        np.asarray(buf).size
                    )
        return self._collective("alltoallv", list(send), coll.alltoallv)

    def alltoallv_concat(
        self, send: Sequence[np.ndarray | None]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`alltoallv` but returns ``(concatenated, counts)``."""
        pieces = self.alltoallv(send)
        counts = np.array([piece.size for piece in pieces], dtype=np.int64)
        if not pieces:
            return np.empty(0, dtype=np.int64), counts
        return np.concatenate(pieces), counts

    def allgatherv(self, buf: np.ndarray | None, concat: bool = True):
        """Gather every rank's buffer at every rank.

        Returns the concatenation by default, or the per-rank list when
        ``concat=False``.
        """
        pieces = self._collective("allgatherv", buf, coll.allgatherv)
        if not concat:
            return pieces
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def allreduce(self, value: Any, op: str | Callable = "sum") -> Any:
        """Reduce ``value`` across the group; all ranks receive the result."""
        return self._collective(
            "allreduce", value, lambda payloads: coll.allreduce(payloads, op)
        )

    def bcast(self, value: Any = None, root: int = 0) -> Any:
        """Broadcast the root's value."""
        return self._collective(
            "bcast", value, lambda payloads: coll.bcast(payloads, root)
        )

    def gather(self, value: Any, root: int = 0) -> list | None:
        """Gather values at ``root`` (non-roots receive ``None``)."""
        return self._collective(
            "gather", value, lambda payloads: coll.gather(payloads, root)
        )

    def scatter(self, values: Sequence | None = None, root: int = 0) -> Any:
        """Scatter the root's per-rank sequence."""
        return self._collective(
            "scatter", values, lambda payloads: coll.scatter(payloads, root)
        )

    def exchange(self, dest: int, buf: np.ndarray | None) -> np.ndarray:
        """Permutation exchange (the 2D algorithm's ``TransposeVector``).

        Every rank names one destination; the pattern must form a
        permutation.  Unlike the full collectives, completion is *pairwise*:
        only the communicating partners synchronize, which is what makes
        the square-grid vector transpose cheap.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"exchange destination {dest} out of range")
        if self.engine.record_peers and dest != self.rank and buf is not None:
            self.stats.peer_words[self._st.members[dest]] += float(
                np.asarray(buf).size
            )
        model = self.engine.cost_model

        def completion(arrivals: list[float], payloads: list) -> tuple[list[float], list[float]]:
            sizes = [float(np.asarray(b).size) if b is not None else 0.0 for _, b in payloads]
            sender_of = {d: src for src, (d, _) in enumerate(payloads)}
            completions = [0.0] * len(payloads)
            transfers = [0.0] * len(payloads)
            for src, (dst, _) in enumerate(payloads):
                partner = sender_of[src]  # who sends to me
                if partner == src and dst == src:
                    # Diagonal processor: the piece never leaves the node.
                    completions[src] = arrivals[src]
                    transfers[src] = 0.0
                    continue
                words = max(sizes[src], sizes[partner])
                cost = model.p2p_cost(words)
                completions[src] = max(arrivals[src], arrivals[dst], arrivals[partner]) + cost
                transfers[src] = cost
            return completions, transfers

        return self._collective("exchange", (dest, buf), coll.exchange, completion)

    # -- point-to-point ---------------------------------------------------
    def send(self, buf: np.ndarray | None, dest: int) -> None:
        """Eager point-to-point send to group rank ``dest``."""
        if not 0 <= dest < self.size:
            raise ValueError(f"send destination {dest} out of range")
        arr = np.asarray(buf) if buf is not None else np.empty(0, dtype=np.int64)
        cost = self.engine.cost_model.p2p_cost(float(arr.size))
        start = self.clock.time
        departure = start + cost
        self.clock.complete_collective(departure, cost)
        self.stats.record("p2p", float(arr.size), 0.0, cost)
        if self.engine.record_timeline:
            from repro.mpsim.timeline import TimelineEvent

            self.stats.events.append(
                TimelineEvent("p2p", start, departure, float(arr.size))
            )
        if self.engine.record_peers and dest != self.rank:
            self.stats.peer_words[self._st.members[dest]] += float(arr.size)
        self.engine.mailbox_put(
            self._st.members[self.rank], self._st.members[dest], (departure, arr)
        )

    def recv(self, source: int) -> np.ndarray:
        """Blocking point-to-point receive from group rank ``source``."""
        if not 0 <= source < self.size:
            raise ValueError(f"recv source {source} out of range")
        departure, arr = self.engine.mailbox_get(
            self._st.members[source], self._st.members[self.rank]
        )
        arrival = self.clock.time
        finish = max(arrival, departure)
        self.clock.complete_collective(finish, 0.0)
        self.stats.record("p2p", 0.0, float(np.asarray(arr).size), finish - arrival)
        if self.engine.record_timeline:
            from repro.mpsim.timeline import TimelineEvent

            self.stats.events.append(
                TimelineEvent("p2p", arrival, finish, float(np.asarray(arr).size))
            )
        return arr

    # -- sub-communicators --------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """MPI_Comm_split: group ranks by ``color``, order by ``(key, rank)``.

        Ranks passing ``color=None`` receive ``None`` (MPI_UNDEFINED).
        """
        engine = self.engine

        def combine(payloads: list) -> list:
            groups: dict[int, list[tuple[int, int]]] = {}
            for grank, (col, k) in enumerate(payloads):
                if col is not None:
                    groups.setdefault(col, []).append((k, grank))
            outputs: list = [None] * len(payloads)
            for col in sorted(groups):
                ordered = sorted(groups[col])
                members = [self._st.members[grank] for _key, grank in ordered]
                state = engine.register_group(members)
                for idx, (_key, grank) in enumerate(ordered):
                    outputs[grank] = (state, idx)
            return outputs

        sort_key = key if key is not None else self.rank
        result = self._collective("split", (color, sort_key), combine)
        if result is None:
            return None
        state, idx = result
        return Communicator(engine, state, idx)
