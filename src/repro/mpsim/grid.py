"""Two-dimensional processor grid (Section 3.2).

Ranks are logically arranged on a ``pr x pc`` mesh; ``P(i, j)`` is the rank
with index ``i * pc + j``.  The grid exposes the row and column
sub-communicators the 2D algorithm needs (fold = Alltoallv over the row,
expand = Allgatherv over the column) plus the square-grid vector transpose.

The paper uses "the closest square processor grid" for all 2D experiments;
:func:`closest_square` mirrors that choice.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mpsim.communicator import Communicator


def closest_square(p: int) -> int:
    """Largest perfect square not exceeding ``p`` (paper's grid choice)."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return int(math.isqrt(p)) ** 2


class ProcessorGrid:
    """Row/column view of a communicator whose size is ``pr * pc``.

    Parameters
    ----------
    comm:
        The parent communicator; its size must equal ``pr * pc``.
    pr, pc:
        Grid dimensions.  If omitted, the square root of ``comm.size`` is
        used (and the size must then be a perfect square).
    """

    def __init__(self, comm: Communicator, pr: int | None = None, pc: int | None = None):
        if pr is None and pc is None:
            side = math.isqrt(comm.size)
            if side * side != comm.size:
                raise ValueError(
                    f"communicator size {comm.size} is not a perfect square; "
                    "pass pr and pc explicitly"
                )
            pr = pc = side
        if pr is None or pc is None:
            raise ValueError("pass both pr and pc, or neither")
        if pr * pc != comm.size:
            raise ValueError(f"grid {pr}x{pc} != communicator size {comm.size}")
        self.comm = comm
        self.pr = pr
        self.pc = pc
        self.row = comm.rank // pc  # my processor-row index i
        self.col = comm.rank % pc  # my processor-column index j
        # Fold phase happens along the processor row, expand along the column.
        self.row_comm = comm.split(color=self.row, key=self.col)
        self.col_comm = comm.split(color=self.col, key=self.row)
        assert self.row_comm is not None and self.col_comm is not None
        assert self.row_comm.rank == self.col
        assert self.col_comm.rank == self.row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessorGrid({self.pr}x{self.pc}, P({self.row},{self.col}))"

    @property
    def is_square(self) -> bool:
        return self.pr == self.pc

    def rank_of(self, i: int, j: int) -> int:
        """Group rank of processor ``P(i, j)``."""
        if not (0 <= i < self.pr and 0 <= j < self.pc):
            raise ValueError(f"P({i},{j}) outside {self.pr}x{self.pc} grid")
        return i * self.pc + j

    @property
    def transpose_partner(self) -> int:
        """Rank of ``P(j, i)`` — the square-grid transpose partner."""
        if not self.is_square:
            raise ValueError("vector transpose requires a square grid")
        return self.rank_of(self.col, self.row)

    def transpose_vector(self, buf: np.ndarray | None) -> np.ndarray:
        """``TransposeVector`` (Algorithm 3, line 5).

        On a square grid this is a pairwise exchange between ``P(i, j)`` and
        ``P(j, i)``; diagonal processors keep their piece.
        """
        return self.comm.exchange(self.transpose_partner, buf)
