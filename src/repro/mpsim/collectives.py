"""Pure (thread-free) implementations of collective semantics.

Each function takes the list of per-rank inputs (index = rank within the
group) and returns the list of per-rank outputs.  The communicator layer
handles synchronization and timing; keeping the data movement pure makes
the semantics directly unit- and property-testable.

Conventions
-----------
* Buffers are 1-D NumPy arrays.  ``None`` is accepted wherever an empty
  buffer is meant and is normalized to an empty ``int64`` array.
* Word counts equal element counts (the paper counts 64-bit words).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

_REDUCERS: dict[str, Callable] = {
    "sum": lambda values: _reduce_pairwise(values, np.add),
    "max": lambda values: _reduce_pairwise(values, np.maximum),
    "min": lambda values: _reduce_pairwise(values, np.minimum),
    "prod": lambda values: _reduce_pairwise(values, np.multiply),
    "lor": lambda values: _reduce_pairwise(values, np.logical_or),
    "land": lambda values: _reduce_pairwise(values, np.logical_and),
}


def _reduce_pairwise(values: Sequence, op) -> object:
    result = values[0]
    for value in values[1:]:
        result = op(result, value)
    return result


def _as_array(buf) -> np.ndarray:
    if buf is None:
        return np.empty(0, dtype=np.int64)
    arr = np.asarray(buf)
    if arr.ndim != 1:
        raise ValueError(f"collective buffers must be 1-D, got shape {arr.shape}")
    return arr


def alltoallv(payloads: Sequence[Sequence[np.ndarray | None]]) -> list[list[np.ndarray]]:
    """All-to-all personalized exchange of variable-size buffers.

    ``payloads[i][j]`` is the buffer rank ``i`` sends to rank ``j``;
    ``output[j][i]`` is what rank ``j`` receives from rank ``i``.
    """
    size = len(payloads)
    for rank, row in enumerate(payloads):
        if len(row) != size:
            raise ValueError(
                f"rank {rank} passed {len(row)} send buffers for group of {size}"
            )
    return [[_as_array(payloads[i][j]) for i in range(size)] for j in range(size)]


def allgatherv(payloads: Sequence[np.ndarray | None]) -> list[list[np.ndarray]]:
    """Each rank contributes one buffer; every rank receives all of them."""
    pieces = [_as_array(p) for p in payloads]
    return [list(pieces) for _ in payloads]


def allreduce(payloads: Sequence, op: str | Callable) -> list:
    """Reduce per-rank values with ``op``; every rank gets the result.

    ``op`` is either one of ``{"sum","max","min","prod","lor","land"}`` or a
    binary callable applied left-to-right.
    """
    if callable(op):
        result = _reduce_pairwise(list(payloads), op)
    else:
        try:
            reducer = _REDUCERS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None
        result = reducer(list(payloads))
    return [result for _ in payloads]


def bcast(payloads: Sequence, root: int) -> list:
    """Broadcast the root's value to every rank."""
    if not 0 <= root < len(payloads):
        raise ValueError(f"bcast root {root} out of range for group of {len(payloads)}")
    value = payloads[root]
    return [value for _ in payloads]


def gather(payloads: Sequence, root: int) -> list:
    """Gather every rank's value at the root (others receive ``None``)."""
    if not 0 <= root < len(payloads):
        raise ValueError(f"gather root {root} out of range for group of {len(payloads)}")
    collected = list(payloads)
    return [collected if rank == root else None for rank in range(len(payloads))]


def scatter(payloads: Sequence, root: int) -> list:
    """Scatter the root's sequence: rank ``i`` receives ``payloads[root][i]``."""
    if not 0 <= root < len(payloads):
        raise ValueError(f"scatter root {root} out of range for group of {len(payloads)}")
    items = payloads[root]
    if items is None or len(items) != len(payloads):
        raise ValueError(
            f"scatter root must supply exactly {len(payloads)} items, "
            f"got {None if items is None else len(items)}"
        )
    return list(items)


def exchange(payloads: Sequence[tuple[int, np.ndarray | None]]) -> list[np.ndarray]:
    """Pairwise/permutation exchange: rank ``i`` sends one buffer to ``dest_i``.

    The destination pattern must be a permutation of the group (a rank may
    send to itself).  Used for the 2D algorithm's ``TransposeVector`` step,
    which on a square grid is a pairwise swap between P(i,j) and P(j,i).
    """
    size = len(payloads)
    dests = [dest for dest, _ in payloads]
    if sorted(dests) != list(range(size)):
        raise ValueError(f"exchange destinations {dests} are not a permutation")
    outputs: list[np.ndarray | None] = [None] * size
    for src, (dest, buf) in enumerate(payloads):
        outputs[dest] = _as_array(buf)
    return outputs  # type: ignore[return-value]


def sent_words(kind: str, payload, self_rank: int | None = None) -> float:
    """Words a rank puts on the wire for one collective call.

    ``self_rank`` (when given) excludes the buffer a rank delivers to
    itself in ``alltoallv``/``exchange`` — local delivery never crosses the
    network, and at small group sizes counting it would bias volumes.
    """
    if kind == "alltoallv":
        return float(
            sum(
                _as_array(b).size
                for j, b in enumerate(payload)
                if self_rank is None or j != self_rank
            )
        )
    if kind == "allgatherv":
        return float(_as_array(payload).size)
    if kind == "exchange":
        dest, buf = payload
        if self_rank is not None and dest == self_rank:
            return 0.0
        return float(_as_array(buf).size)
    if kind in ("allreduce", "bcast", "gather", "scatter"):
        return float(np.asarray(payload).size) if payload is not None else 0.0
    if kind == "barrier":
        return 0.0
    raise ValueError(f"unknown collective kind {kind!r}")


def recv_words(kind: str, output, self_rank: int | None = None) -> float:
    """Words a rank receives from one collective call (see :func:`sent_words`
    for the ``self_rank`` convention)."""
    if kind == "alltoallv":
        return float(
            sum(
                _as_array(b).size
                for i, b in enumerate(output)
                if self_rank is None or i != self_rank
            )
        )
    if kind == "allgatherv":
        return float(sum(_as_array(b).size for b in output))
    if kind == "exchange":
        return float(_as_array(output).size)
    if kind in ("allreduce", "bcast"):
        return float(np.asarray(output).size) if output is not None else 0.0
    if kind == "gather":
        if output is None:
            return 0.0
        return float(sum(np.asarray(o).size for o in output))
    if kind == "scatter":
        return float(np.asarray(output).size) if output is not None else 0.0
    if kind == "barrier":
        return 0.0
    raise ValueError(f"unknown collective kind {kind!r}")
