"""Per-rank virtual clocks.

Each simulated rank owns a :class:`RankClock`.  Local work advances the
clock through :meth:`RankClock.charge_compute`; collectives advance it to
the (virtual) completion time of the operation and split the elapsed span
into *transfer* (the modeled cost of moving bytes) and *wait* (idling for
slower ranks), mirroring how the paper attributes "time spent in MPI
calls" including synchronization waits (Section 6, Figure 4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class RankClock:
    """Virtual clock and operation counters for one simulated rank.

    Attributes
    ----------
    time:
        Current virtual time in seconds.
    compute_time:
        Cumulative seconds charged to local computation.
    mpi_transfer_time:
        Cumulative seconds charged to actually moving data in collectives.
    mpi_wait_time:
        Cumulative seconds spent waiting at collectives for other ranks.
    fault_time:
        Cumulative seconds lost to injected faults (timeout detection,
        retry backoff, straggler delays) — see :mod:`repro.faults`.
    counters:
        Free-form operation counters (edges examined, words streamed, ...),
        recorded even when no cost model is installed.
    """

    time: float = 0.0
    compute_time: float = 0.0
    mpi_transfer_time: float = 0.0
    mpi_wait_time: float = 0.0
    fault_time: float = 0.0
    counters: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    @property
    def mpi_time(self) -> float:
        """Total seconds attributed to MPI (transfer + wait)."""
        return self.mpi_transfer_time + self.mpi_wait_time

    def charge_compute(self, seconds: float, **counters: float) -> None:
        """Advance the clock by ``seconds`` of local computation.

        Extra keyword arguments are accumulated into :attr:`counters`.
        """
        if seconds < 0:
            raise ValueError(f"negative compute charge: {seconds}")
        self.time += seconds
        self.compute_time += seconds
        for key, value in counters.items():
            self.counters[key] += value

    def charge_fault(self, seconds: float, **counters: float) -> None:
        """Advance the clock by ``seconds`` lost to an injected fault.

        Attributed to :attr:`fault_time` rather than compute or MPI so
        recovery overhead is separable in stats and traces.
        """
        if seconds < 0:
            raise ValueError(f"negative fault charge: {seconds}")
        self.time += seconds
        self.fault_time += seconds
        for key, value in counters.items():
            self.counters[key] += value

    def count(self, **counters: float) -> None:
        """Accumulate operation counters without advancing the clock."""
        for key, value in counters.items():
            self.counters[key] += value

    def complete_collective(self, completion_time: float, transfer_cost: float) -> None:
        """Advance the clock to a collective's completion time.

        Parameters
        ----------
        completion_time:
            Virtual time at which the collective finishes for this rank.
        transfer_cost:
            The modeled data-movement cost; the remainder of the elapsed
            span is attributed to waiting.
        """
        elapsed = completion_time - self.time
        if elapsed < -1e-12:
            raise ValueError(
                f"collective completes before arrival: {completion_time} < {self.time}"
            )
        elapsed = max(elapsed, 0.0)
        transfer = min(transfer_cost, elapsed)
        self.mpi_transfer_time += transfer
        self.mpi_wait_time += elapsed - transfer
        self.time = completion_time

    def snapshot(self) -> dict[str, float]:
        """Return a plain-dict summary (useful for reports and tests)."""
        return {
            "time": self.time,
            "compute_time": self.compute_time,
            "mpi_transfer_time": self.mpi_transfer_time,
            "mpi_wait_time": self.mpi_wait_time,
            "mpi_time": self.mpi_time,
            "fault_time": self.fault_time,
        }
