"""Communication statistics for simulated SPMD runs.

Volumes are counted in *words* (array elements; the paper's model counts
64-bit memory words) and are exact: they are derived from the actual NumPy
buffers handed to the collectives, not from a model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.mpsim.clock import RankClock


@dataclass
class RankStats:
    """Per-rank communication record.

    ``words_sent``/``words_recv`` and ``calls`` are keyed by collective
    kind (``"alltoallv"``, ``"allgatherv"``, ``"allreduce"``, ...).
    """

    words_sent: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    words_recv: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    mpi_time_by_kind: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Words sent per destination *global* rank (populated only when the
    #: run was launched with ``record_peers=True``).
    peer_words: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    #: Collective spans on this rank's virtual clock (populated only when
    #: the run was launched with ``record_timeline=True``).
    events: list = field(default_factory=list)

    def record(
        self,
        kind: str,
        sent_words: float,
        recv_words: float,
        mpi_seconds: float,
    ) -> None:
        self.words_sent[kind] += sent_words
        self.words_recv[kind] += recv_words
        self.calls[kind] += 1
        self.mpi_time_by_kind[kind] += mpi_seconds

    @property
    def total_words_sent(self) -> float:
        return float(sum(self.words_sent.values()))

    @property
    def total_words_recv(self) -> float:
        return float(sum(self.words_recv.values()))


@dataclass
class SimStats:
    """Aggregated statistics of one SPMD run (all ranks)."""

    clocks: list[RankClock]
    comm: list[RankStats]

    @property
    def nranks(self) -> int:
        return len(self.clocks)

    @property
    def makespan(self) -> float:
        """Virtual wall-clock of the run: the slowest rank's finish time."""
        return max((c.time for c in self.clocks), default=0.0)

    @property
    def max_compute_time(self) -> float:
        return max((c.compute_time for c in self.clocks), default=0.0)

    @property
    def max_mpi_time(self) -> float:
        return max((c.mpi_time for c in self.clocks), default=0.0)

    @property
    def mean_mpi_time(self) -> float:
        if not self.clocks:
            return 0.0
        return sum(c.mpi_time for c in self.clocks) / len(self.clocks)

    def mpi_fraction(self, rank: int) -> float:
        """Fraction of a rank's virtual time spent in MPI (Fig. 4 metric)."""
        clock = self.clocks[rank]
        if clock.time <= 0:
            return 0.0
        return clock.mpi_time / clock.time

    def words_sent(self, kind: str | None = None) -> float:
        """Total words sent across all ranks (optionally one collective kind)."""
        if kind is None:
            return float(sum(r.total_words_sent for r in self.comm))
        return float(sum(r.words_sent.get(kind, 0.0) for r in self.comm))

    def words_recv(self, kind: str | None = None) -> float:
        if kind is None:
            return float(sum(r.total_words_recv for r in self.comm))
        return float(sum(r.words_recv.get(kind, 0.0) for r in self.comm))

    def calls(self, kind: str) -> int:
        """Maximum number of calls of ``kind`` made by any rank."""
        return max((r.calls.get(kind, 0) for r in self.comm), default=0)

    def mpi_time_by_kind(self, kind: str) -> float:
        """Max-over-ranks MPI seconds attributed to one collective kind."""
        return max((r.mpi_time_by_kind.get(kind, 0.0) for r in self.comm), default=0.0)

    def counter(self, name: str) -> float:
        """Sum of a named operation counter across ranks."""
        return float(sum(c.counters.get(name, 0.0) for c in self.clocks))

    def comm_matrix(self):
        """Rank-to-rank traffic matrix: ``M[i, j]`` = words ``i`` sent ``j``.

        Requires the run to have been launched with ``record_peers=True``
        (otherwise the matrix is all zeros).  Self-traffic is excluded by
        construction.
        """
        import numpy as np

        matrix = np.zeros((self.nranks, self.nranks))
        for src, rank_stats in enumerate(self.comm):
            for dst, words in rank_stats.peer_words.items():
                matrix[src, dst] = words
        return matrix

    def summary(self) -> dict[str, float]:
        return {
            "nranks": self.nranks,
            "makespan": self.makespan,
            "max_compute_time": self.max_compute_time,
            "max_mpi_time": self.max_mpi_time,
            "mean_mpi_time": self.mean_mpi_time,
            "total_words_sent": self.words_sent(),
        }
