"""Communication statistics for simulated SPMD runs.

Volumes are counted in *words* (array elements; the paper's model counts
64-bit memory words) and are exact: they are derived from the actual NumPy
buffers handed to the collectives, not from a model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.mpsim.clock import RankClock


@dataclass
class RankStats:
    """Per-rank communication record.

    ``words_sent``/``words_recv`` and ``calls`` are keyed by collective
    kind (``"alltoallv"``, ``"allgatherv"``, ``"allreduce"``, ...).
    """

    words_sent: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    words_recv: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    mpi_time_by_kind: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Logical (pre-codec) words per kind, reported by the comm channel.
    #: ``words_sent`` holds the *wire* (post-codec) size of the same
    #: exchanges, since the collectives see the encoded buffers.
    payload_words: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Post-codec words per kind for channel-routed exchanges only (a
    #: subset of ``words_sent``, which also counts control collectives).
    wire_words: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: ``{level: {kind: words}}`` breakdowns for channel-routed exchanges.
    level_payload: dict[int, dict[str, float]] = field(default_factory=dict)
    level_wire: dict[int, dict[str, float]] = field(default_factory=dict)
    #: Candidates dropped by the sender-side sieve before encoding.
    sieve_dropped: float = 0.0
    #: Words sent per destination *global* rank (populated only when the
    #: run was launched with ``record_peers=True``).
    peer_words: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    #: Collective spans on this rank's virtual clock (populated only when
    #: the run was launched with ``record_timeline=True``).
    events: list = field(default_factory=list)

    def record(
        self,
        kind: str,
        sent_words: float,
        recv_words: float,
        mpi_seconds: float,
    ) -> None:
        self.words_sent[kind] += sent_words
        self.words_recv[kind] += recv_words
        self.calls[kind] += 1
        self.mpi_time_by_kind[kind] += mpi_seconds

    def record_channel(
        self,
        kind: str,
        payload_words: float,
        wire_words: float,
        level: int | None = None,
        dropped: float = 0.0,
    ) -> None:
        """Record one channel exchange's logical vs wire volume.

        Called by :class:`repro.comm.channel.CommChannel` alongside the
        collective itself (which books the wire words into
        ``words_sent``); keeps the self-exclusion convention of the
        underlying collective kind.
        """
        self.payload_words[kind] += payload_words
        self.wire_words[kind] += wire_words
        self.sieve_dropped += dropped
        if level is not None:
            level = int(level)
            by_kind = self.level_payload.setdefault(level, defaultdict(float))
            by_kind[kind] += payload_words
            by_kind = self.level_wire.setdefault(level, defaultdict(float))
            by_kind[kind] += wire_words

    @property
    def total_words_sent(self) -> float:
        return float(sum(self.words_sent.values()))

    @property
    def total_words_recv(self) -> float:
        return float(sum(self.words_recv.values()))


@dataclass
class SimStats:
    """Aggregated statistics of one SPMD run (all ranks)."""

    clocks: list[RankClock]
    comm: list[RankStats]

    @property
    def nranks(self) -> int:
        return len(self.clocks)

    @property
    def makespan(self) -> float:
        """Virtual wall-clock of the run: the slowest rank's finish time."""
        return max((c.time for c in self.clocks), default=0.0)

    @property
    def max_compute_time(self) -> float:
        return max((c.compute_time for c in self.clocks), default=0.0)

    @property
    def max_mpi_time(self) -> float:
        return max((c.mpi_time for c in self.clocks), default=0.0)

    @property
    def mean_mpi_time(self) -> float:
        if not self.clocks:
            return 0.0
        return sum(c.mpi_time for c in self.clocks) / len(self.clocks)

    def mpi_fraction(self, rank: int) -> float:
        """Fraction of a rank's virtual time spent in MPI (Fig. 4 metric)."""
        clock = self.clocks[rank]
        if clock.time <= 0:
            return 0.0
        return clock.mpi_time / clock.time

    def words_sent(self, kind: str | None = None) -> float:
        """Total words sent across all ranks (optionally one collective kind)."""
        if kind is None:
            return float(sum(r.total_words_sent for r in self.comm))
        return float(sum(r.words_sent.get(kind, 0.0) for r in self.comm))

    def words_recv(self, kind: str | None = None) -> float:
        if kind is None:
            return float(sum(r.total_words_recv for r in self.comm))
        return float(sum(r.words_recv.get(kind, 0.0) for r in self.comm))

    def payload_words(self, kind: str | None = None) -> float:
        """Logical (pre-codec) words of channel-routed exchanges."""
        if kind is None:
            return float(sum(sum(r.payload_words.values()) for r in self.comm))
        return float(sum(r.payload_words.get(kind, 0.0) for r in self.comm))

    def wire_words(self, kind: str | None = None) -> float:
        """Post-codec words of channel-routed exchanges (what beta_N prices)."""
        if kind is None:
            return float(sum(sum(r.wire_words.values()) for r in self.comm))
        return float(sum(r.wire_words.get(kind, 0.0) for r in self.comm))

    def compression_ratio(self, kind: str | None = None) -> float:
        """payload / wire over channel-routed exchanges (1.0 when untracked)."""
        wire = self.wire_words(kind)
        if wire <= 0:
            return 1.0
        return self.payload_words(kind) / wire

    @property
    def sieve_dropped(self) -> float:
        """Candidates dropped by the sender-side sieve, summed over ranks."""
        return float(sum(r.sieve_dropped for r in self.comm))

    def words_by_kind(self) -> dict[str, float]:
        """Total words sent per collective kind, across all ranks."""
        totals: dict[str, float] = {}
        for rank_stats in self.comm:
            for kind, words in rank_stats.words_sent.items():
                totals[kind] = totals.get(kind, 0.0) + words
        return dict(sorted(totals.items()))

    def payload_by_kind(self) -> dict[str, float]:
        """Logical words per kind for channel-routed exchanges."""
        totals: dict[str, float] = {}
        for rank_stats in self.comm:
            for kind, words in rank_stats.payload_words.items():
                totals[kind] = totals.get(kind, 0.0) + words
        return dict(sorted(totals.items()))

    def words_by_level(self) -> dict[int, dict[str, float]]:
        """``{level: {kind: wire words}}`` for channel-routed exchanges."""
        totals: dict[int, dict[str, float]] = {}
        for rank_stats in self.comm:
            for level, by_kind in rank_stats.level_wire.items():
                level_totals = totals.setdefault(level, {})
                for kind, words in by_kind.items():
                    level_totals[kind] = level_totals.get(kind, 0.0) + words
        return {level: totals[level] for level in sorted(totals)}

    def payload_by_level(self) -> dict[int, dict[str, float]]:
        """``{level: {kind: logical words}}`` for channel-routed exchanges."""
        totals: dict[int, dict[str, float]] = {}
        for rank_stats in self.comm:
            for level, by_kind in rank_stats.level_payload.items():
                level_totals = totals.setdefault(level, {})
                for kind, words in by_kind.items():
                    level_totals[kind] = level_totals.get(kind, 0.0) + words
        return {level: totals[level] for level in sorted(totals)}

    def calls(self, kind: str) -> int:
        """Maximum number of calls of ``kind`` made by any rank."""
        return max((r.calls.get(kind, 0) for r in self.comm), default=0)

    def mpi_time_by_kind(self, kind: str) -> float:
        """Max-over-ranks MPI seconds attributed to one collective kind."""
        return max((r.mpi_time_by_kind.get(kind, 0.0) for r in self.comm), default=0.0)

    def counter(self, name: str) -> float:
        """Sum of a named operation counter across ranks."""
        return float(sum(c.counters.get(name, 0.0) for c in self.clocks))

    def comm_matrix(self):
        """Rank-to-rank traffic matrix: ``M[i, j]`` = words ``i`` sent ``j``.

        Requires the run to have been launched with ``record_peers=True``
        (otherwise the matrix is all zeros).  Self-traffic is excluded by
        construction.
        """
        import numpy as np

        matrix = np.zeros((self.nranks, self.nranks))
        for src, rank_stats in enumerate(self.comm):
            for dst, words in rank_stats.peer_words.items():
                matrix[src, dst] = words
        return matrix

    def summary(self) -> dict:
        """Scalar run summary plus per-kind/per-level word breakdowns.

        ``total_words_sent`` counts what actually crossed the simulated
        wire (post-codec); ``total_payload_words`` is the logical volume
        of the channel-routed exchanges, so their ratio is the run's
        compression factor.
        """
        return {
            "nranks": self.nranks,
            "makespan": self.makespan,
            "max_compute_time": self.max_compute_time,
            "max_mpi_time": self.max_mpi_time,
            "mean_mpi_time": self.mean_mpi_time,
            "total_words_sent": self.words_sent(),
            "total_payload_words": self.payload_words(),
            "total_wire_words": self.wire_words(),
            "compression_ratio": self.compression_ratio(),
            "sieve_dropped_candidates": self.sieve_dropped,
            "words_by_kind": self.words_by_kind(),
            "payload_by_kind": self.payload_by_kind(),
            "words_by_level": self.words_by_level(),
        }
