"""Comparison baselines (Section 6's external codes, reimplemented).

The paper compares against two distributed codes whose *algorithmic*
behaviour we reproduce:

* :func:`~repro.baselines.pbgl_like.bfs_pbgl_like` — Parallel Boost Graph
  Library-style BFS: level-synchronous with per-edge messaging through a
  generic active-message/property-map abstraction (no send-side
  aggregation, heavyweight per-message software path);
* :func:`~repro.baselines.graph500_ref.bfs_graph500_ref` — the Graph 500
  reference MPI code (v2.1, non-replicated): correct 1D level-synchronous
  BFS with bulk exchanges but no send-side deduplication and no intra-node
  threading.

Both run on the same simulated MPI substrate and machine models as the
paper's algorithms, so the measured gaps come from the same mechanisms the
paper identifies: duplicate traffic, per-message overhead, and visited
check costs.
"""

from repro.baselines.graph500_ref import bfs_graph500_ref
from repro.baselines.pbgl_like import bfs_pbgl_like

__all__ = ["bfs_graph500_ref", "bfs_pbgl_like"]
