"""Graph 500 reference-MPI-style 1D BFS (the "non-replicated reference
MPI code" of Section 6).

Same 1D level-synchronous structure as :func:`repro.core.bfs1d.bfs_1d`,
minus the tuning that makes the paper's code fast:

* **no send-side deduplication** — every traversed edge ships a
  (vertex, parent) pair, so all-to-all volume is ~``2m`` words instead of
  the deduplicated volume;
* **per-edge queue discipline** — the reference code pushes received
  vertices through a shared queue one at a time; we charge one irregular
  visited-bitmap access plus queue bookkeeping per received pair rather
  than one per deduplicated candidate;
* **a per-level visited-bitmap Allreduce** — the simple reference code
  synchronizes a full ``n/64``-word visited bitmap every level; that
  volume does not shrink with ``p``, so its cost *grows* as collective
  bandwidth degrades with scale;
* **no intra-node threading.**

On Franklin the paper measures its flat 1D code at 2.72x / 3.43x / 4.13x
the reference at 512 / 1024 / 2048 cores — a gap that *grows* with scale
because the bitmap synchronization and duplicate traffic meet the
shrinking all-to-all bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import (
    build_send_buffers,
    dedup_candidates,
    unpack_pairs,
)
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.model.costmodel import Charger
from repro.mpsim.communicator import Communicator

#: Integer ops charged per received pair for the reference code's
#: scalar per-edge handling (branchy visited test, pointer chase, bounds
#: checks, enqueue).
QUEUE_OPS_PER_PAIR = 20.0


def bfs_graph500_ref(
    comm: Communicator,
    csr: CSR,
    source: int,
    machine=None,
) -> dict:
    """Rank body of the reference-style 1D BFS (flat MPI only)."""
    part = Partition1D(csr.n, comm.size)
    lo, hi = part.range_of(comm.rank)
    nloc = hi - lo
    charger = Charger(comm, machine=machine, threads=1)

    levels = np.full(nloc, -1, dtype=np.int64)
    parents = np.full(nloc, -1, dtype=np.int64)
    # Global visited bitmap, synchronized with a full Allreduce per level
    # (the reference code's scalability sin: n/64 words regardless of p).
    bitmap = np.zeros((csr.n + 63) // 64, dtype=np.uint64)
    if lo <= source < hi:
        levels[source - lo] = 0
        parents[source - lo] = source
        frontier = np.array([source], dtype=np.int64)
        bitmap[source // 64] |= np.uint64(1) << np.uint64(source % 64)
    else:
        frontier = np.empty(0, dtype=np.int64)

    level = 1
    while True:
        targets, sources = csr.gather(frontier)
        charger.random(frontier.size, ws_words=2 * max(nloc, 1))
        charger.stream(2.0 * targets.size, edges_scanned=float(targets.size))

        # No aggregation: every edge is shipped.
        owners = part.owner_of(targets)
        send = build_send_buffers(targets, sources, owners, comm.size)
        charger.intops(2.0 * targets.size)
        charger.stream(2.0 * targets.size)
        charger.count(
            candidates=float(targets.size), unique_sends=float(targets.size)
        )

        recv, _counts = comm.alltoallv_concat(send)
        rv, rp = unpack_pairs(recv)
        # Scalar queue discipline: one visited probe + bookkeeping per pair.
        charger.random(float(rv.size), ws_words=max(nloc, 1))
        charger.intops(QUEUE_OPS_PER_PAIR * rv.size)
        unvisited = levels[rv - lo] < 0
        rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
        levels[rv - lo] = level
        parents[rv - lo] = rp
        frontier = rv

        # Bitmap synchronization: OR-allreduce the full visited bitmap.
        np.bitwise_or.at(
            bitmap, rv // 64, np.uint64(1) << (rv % 64).astype(np.uint64)
        )
        bitmap = comm.allreduce(bitmap, op=np.bitwise_or)
        charger.stream(float(bitmap.size))

        total_new = comm.allreduce(int(frontier.size))
        if total_new == 0:
            break
        level += 1

    return {"lo": lo, "hi": hi, "levels": levels, "parents": parents, "nlevels": level}
