"""Parallel Boost Graph Library-style BFS baseline (Table 2's comparator).

PBGL "lifts" the sequential BOOST BFS to distributed memory behind generic
property maps and a process-group abstraction [20].  Relative to the
paper's tuned codes, the observable behaviours are:

* **per-edge messaging** through the generic interface — every traversed
  edge is serialized and dispatched individually (we charge a software
  per-message overhead on both sides, on top of the wire volume);
* **no send-side aggregation/deduplication**;
* **ghost/ownership resolution through associative property maps** —
  charged as several dependent irregular accesses per received message
  instead of one array probe;
* **distributed queue with per-vertex bookkeeping.**

The paper measures flat 2D at 10-16x PBGL's MTEPS on Carver at 128/256
cores (scale 22/24 R-MAT); the gap here arises from the same mechanisms.
Functionally the baseline is still a correct level-synchronous BFS — the
exchange is batched per level by the simulator, only its *cost* reflects
the per-edge software path.
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import (
    build_send_buffers,
    dedup_candidates,
    unpack_pairs,
)
from repro.core.partition import Partition1D
from repro.graphs.csr import CSR
from repro.model.costmodel import Charger
from repro.mpsim.communicator import Communicator

#: Integer ops charged per message on the send side: serialization,
#: generic property-map dispatch, trigger lookup.  A few hundred ops per
#: edge is what profiling generic active-message layers shows; calibrated
#: so Table 2's PBGL column lands in the tens-of-MTEPS regime.
SEND_OVERHEAD_OPS = 300.0
#: Same for the receive side (deserialize + handler dispatch).
RECV_OVERHEAD_OPS = 300.0
#: Dependent irregular accesses per received message: property-map lookup,
#: ghost-cell check, queue push.
RECV_RANDOM_ACCESSES = 4.0


def bfs_pbgl_like(
    comm: Communicator,
    csr: CSR,
    source: int,
    machine=None,
) -> dict:
    """Rank body of the PBGL-style BFS (flat MPI only)."""
    part = Partition1D(csr.n, comm.size)
    lo, hi = part.range_of(comm.rank)
    nloc = hi - lo
    charger = Charger(comm, machine=machine, threads=1)

    levels = np.full(nloc, -1, dtype=np.int64)
    parents = np.full(nloc, -1, dtype=np.int64)
    if lo <= source < hi:
        levels[source - lo] = 0
        parents[source - lo] = source
        frontier = np.array([source], dtype=np.int64)
    else:
        frontier = np.empty(0, dtype=np.int64)

    level = 1
    while True:
        targets, sources = csr.gather(frontier)
        charger.random(frontier.size, ws_words=2 * max(nloc, 1))
        charger.stream(2.0 * targets.size, edges_scanned=float(targets.size))

        owners = part.owner_of(targets)
        send = build_send_buffers(targets, sources, owners, comm.size)
        # Per-edge software path on the send side.
        charger.intops(SEND_OVERHEAD_OPS * targets.size)
        charger.count(
            candidates=float(targets.size), unique_sends=float(targets.size)
        )

        recv, _counts = comm.alltoallv_concat(send)
        rv, rp = unpack_pairs(recv)
        # Per-message receive path: dispatch plus property-map probes.
        charger.intops(RECV_OVERHEAD_OPS * rv.size)
        charger.random(RECV_RANDOM_ACCESSES * rv.size, ws_words=max(nloc, 1))
        unvisited = levels[rv - lo] < 0
        rv, rp = dedup_candidates(rv[unvisited], rp[unvisited])
        levels[rv - lo] = level
        parents[rv - lo] = rp
        frontier = rv

        total_new = comm.allreduce(int(frontier.size))
        if total_new == 0:
            break
        level += 1

    return {"lo": lo, "hi": hi, "levels": levels, "parents": parents, "nlevels": level}
