"""Pluggable wire-format codecs for the BFS exchange buffers.

The paper's cost model charges network time as ``words x beta_N``, so
every word shaved off a collective payload is modeled speedup.  Lv et
al. ("Compression and Sieve", arXiv:1208.5542) show that delta/bitmap
compression of the frontier exchanges cuts BFS communication volume
severalfold on exactly this 1D/2D design; these codecs reproduce that
wire layer:

* ``raw`` — the identity format: interleaved ``[v0, p0, v1, p1, ...]``
  int64 pairs, plain vertex lists, packed 64-bit frontier bitmaps.  Wire
  words equal payload words; this is the pre-existing behaviour and the
  default.
* ``delta-varint`` — sort, delta-encode the vertex ids, and LEB128-pack
  the interleaved (delta, parent) stream.  Sorted ids become 1-3 byte
  varints at benchmark scales, against 8-byte raw words.
* ``bitmap`` — dense presence bitmap over the destination's owned vertex
  range plus one parent word per set bit.  Wins once the per-destination
  frontier is denser than ~1/64 of the owned range.
* ``auto`` — per-buffer polyalgorithm: encodes with every applicable
  codec, ships the smallest (plus a one-word tag naming the choice),
  mirroring the SpMSV kernel selection by measured density.

Every codec encodes the empty payload as the empty buffer, and all
decoded (vertex, parent) multisets are identical to the input up to
ordering — the receivers' (select, max) deduplication makes the BFS
output bit-identical to the serial oracle under every codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.comm.varint import (
    bytes_to_words,
    decode_varints,
    encode_varints,
    words_to_bytes,
)
from repro.core.frontier import (
    bitmap_words,
    dedup_candidates,
    pack_frontier_bitmap,
    pack_pairs,
    unpack_frontier_bitmap,
    unpack_pairs,
)


class CodecError(ValueError):
    """A wire buffer failed decode validation (truncated or corrupted).

    Every decoder raises this — never silently decodes wrong vertex
    ids — when the buffer is structurally inconsistent: truncated
    headers or streams, count mismatches, unknown dispatch tags, or
    decoded ids outside the range both endpoints agreed on.  The fault
    layer (:mod:`repro.faults`) relies on this contract to catch
    injected wire corruption inside :class:`~repro.comm.channel.CommChannel`
    and retry the collective.
    """


def _check_targets(targets: np.ndarray, ctx: VertexRange | None, name: str) -> None:
    """Validate decoded vertex ids against the agreed range, if usable.

    ``ctx.nbits == 0`` marks a degenerate/unknown range (some callers
    pass one merely to steer codec applicability), so only positive
    widths are enforceable.
    """
    if ctx is None or ctx.nbits <= 0 or targets.size == 0:
        return
    lo, hi = ctx.lo, ctx.lo + ctx.nbits
    if int(targets.min()) < lo or int(targets.max()) >= hi:
        raise CodecError(
            f"corrupt {name} buffer: decoded vertex id outside [{lo}, {hi})"
        )


@dataclass(frozen=True)
class VertexRange:
    """Contiguous global-id range ``[lo, lo + nbits)`` owned by one rank.

    The bitmap codec needs it to size the presence bitmap; the other
    codecs ignore it.
    """

    lo: int
    nbits: int

    def __post_init__(self):
        if self.nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {self.nbits}")


def _as_pairs(targets, parents) -> tuple[np.ndarray, np.ndarray]:
    targets = np.asarray(targets, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    if targets.shape != parents.shape:
        raise ValueError("targets/parents must be equal length")
    return targets, parents


def _delta_stream(sorted_values: np.ndarray) -> np.ndarray:
    """First value absolute, the rest as (non-negative) deltas."""
    return kernels.delta_encode(sorted_values)


def _undelta(deltas: np.ndarray) -> np.ndarray:
    return kernels.delta_decode(deltas)


class Codec:
    """Wire-format interface: (vertex, parent) pairs and vertex sets.

    ``ctx`` carries the :class:`VertexRange` both endpoints agree on for
    the buffer (the destination's owned range for pair exchanges, the
    contributor's range for frontier gathers); codecs that do not need it
    accept ``None``.  ``dense=True`` marks exchange sites whose *payload*
    baseline is a packed bitmap (the bottom-up expand) rather than a
    vertex list.
    """

    name: str = "abstract"

    def encode_pairs(
        self, targets: np.ndarray, parents: np.ndarray, ctx: VertexRange | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    def decode_pairs(
        self, wire: np.ndarray, ctx: VertexRange | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def encode_set(
        self, vertices: np.ndarray, ctx: VertexRange | None = None, dense: bool = False
    ) -> np.ndarray:
        raise NotImplementedError

    def decode_set(
        self, wire: np.ndarray, ctx: VertexRange | None = None, dense: bool = False
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class RawCodec(Codec):
    """Identity wire format: what the algorithms shipped before codecs."""

    name = "raw"

    def encode_pairs(self, targets, parents, ctx=None):
        return pack_pairs(*_as_pairs(targets, parents))

    def decode_pairs(self, wire, ctx=None):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size % 2:
            raise CodecError(
                f"corrupt raw pair buffer: odd word count {wire.size}"
            )
        targets, parents = unpack_pairs(wire)
        _check_targets(targets, ctx, self.name)
        return targets, parents

    def encode_set(self, vertices, ctx=None, dense=False):
        vertices = np.asarray(vertices, dtype=np.int64)
        if not dense:
            return vertices
        if ctx is None:
            raise ValueError("dense set encoding requires a VertexRange ctx")
        return pack_frontier_bitmap(vertices, ctx.lo, ctx.nbits).view(np.int64)

    def decode_set(self, wire, ctx=None, dense=False):
        wire = np.asarray(wire, dtype=np.int64)
        if not dense:
            _check_targets(wire, ctx, self.name)
            return wire
        if ctx is None:
            raise ValueError("dense set decoding requires a VertexRange ctx")
        if wire.size != bitmap_words(ctx.nbits):
            raise CodecError(
                f"corrupt raw set buffer: {wire.size} bitmap words for "
                f"a {ctx.nbits}-bit range"
            )
        mask = unpack_frontier_bitmap(wire.view(np.uint64), ctx.nbits)
        return np.flatnonzero(mask).astype(np.int64) + ctx.lo


class DeltaVarintCodec(Codec):
    """Sort + delta + LEB128 varint packing of the pair wire format.

    Pairs are sorted by (vertex, parent); the varint stream interleaves
    vertex deltas with absolute parents, so the decoded multiset matches
    the input exactly.  Vertex ids must be non-negative (BFS ids always
    are); parents may be any int64 and round-trip through the unsigned
    varint view.
    """

    name = "delta-varint"

    #: Wire layout: ``[npairs, nbytes, packed varint words...]``.
    HEADER_WORDS = 2

    def encode_pairs(self, targets, parents, ctx=None):
        targets, parents = _as_pairs(targets, parents)
        if targets.size == 0:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((parents, targets))
        targets, parents = targets[order], parents[order]
        seq = np.empty(2 * targets.size, dtype=np.int64)
        seq[0::2] = _delta_stream(targets)
        seq[1::2] = parents
        stream = encode_varints(seq)
        header = np.array([targets.size, stream.size], dtype=np.int64)
        return np.concatenate([header, bytes_to_words(stream)])

    def decode_pairs(self, wire, ctx=None):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if wire.size < self.HEADER_WORDS:
            raise CodecError(
                f"corrupt delta-varint buffer: truncated header "
                f"({wire.size} words)"
            )
        npairs, nbytes = int(wire[0]), int(wire[1])
        try:
            seq = decode_varints(words_to_bytes(wire[self.HEADER_WORDS :], nbytes))
        except ValueError as exc:
            raise CodecError(f"corrupt delta-varint buffer: {exc}") from None
        if seq.size != 2 * npairs:
            raise CodecError(
                f"corrupt delta-varint buffer: {seq.size} values for {npairs} pairs"
            )
        targets = _undelta(seq[0::2])
        _check_targets(targets, ctx, self.name)
        return targets, seq[1::2]

    def encode_set(self, vertices, ctx=None, dense=False):
        vertices = np.sort(np.asarray(vertices, dtype=np.int64))
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        stream = encode_varints(_delta_stream(vertices))
        header = np.array([vertices.size, stream.size], dtype=np.int64)
        return np.concatenate([header, bytes_to_words(stream)])

    def decode_set(self, wire, ctx=None, dense=False):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size == 0:
            return np.empty(0, dtype=np.int64)
        if wire.size < self.HEADER_WORDS:
            raise CodecError(
                f"corrupt delta-varint buffer: truncated header "
                f"({wire.size} words)"
            )
        count, nbytes = int(wire[0]), int(wire[1])
        try:
            deltas = decode_varints(words_to_bytes(wire[self.HEADER_WORDS :], nbytes))
        except ValueError as exc:
            raise CodecError(f"corrupt delta-varint buffer: {exc}") from None
        if deltas.size != count:
            raise CodecError(
                f"corrupt delta-varint buffer: {deltas.size} values for {count}"
            )
        vertices = _undelta(deltas)
        _check_targets(vertices, ctx, self.name)
        return vertices


class BitmapCodec(Codec):
    """Dense presence bitmap over the buffer's agreed vertex range.

    Pairs ship as ``ceil(nbits/64)`` bitmap words plus one parent word
    per set bit (ascending vertex order); duplicates are collapsed with
    the (select, max) rule the receiver applies anyway.  Wins once the
    buffer's density exceeds ~1/64 of the owned range — the hub-dominated
    middle levels of an R-MAT traversal.
    """

    name = "bitmap"

    def encode_pairs(self, targets, parents, ctx=None):
        targets, parents = _as_pairs(targets, parents)
        if targets.size == 0:
            return np.empty(0, dtype=np.int64)
        if ctx is None:
            raise ValueError("bitmap pair encoding requires a VertexRange ctx")
        targets, parents = dedup_candidates(targets, parents)
        words = pack_frontier_bitmap(targets, ctx.lo, ctx.nbits).view(np.int64)
        return np.concatenate([words, parents])

    def decode_pairs(self, wire, ctx=None):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if ctx is None:
            raise ValueError("bitmap pair decoding requires a VertexRange ctx")
        nwords = bitmap_words(ctx.nbits)
        if wire.size < nwords:
            raise CodecError(
                f"corrupt bitmap buffer: {wire.size} words, shorter than "
                f"the {nwords}-word bitmap"
            )
        mask = unpack_frontier_bitmap(wire[:nwords].view(np.uint64), ctx.nbits)
        targets = np.flatnonzero(mask).astype(np.int64) + ctx.lo
        parents = wire[nwords:]
        if parents.size != targets.size:
            raise CodecError(
                f"corrupt bitmap buffer: {parents.size} parents for "
                f"{targets.size} set bits"
            )
        return targets, parents

    def encode_set(self, vertices, ctx=None, dense=False):
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        if ctx is None:
            raise ValueError("bitmap set encoding requires a VertexRange ctx")
        return pack_frontier_bitmap(
            kernels.unique_sorted(vertices), ctx.lo, ctx.nbits
        ).view(np.int64)

    def decode_set(self, wire, ctx=None, dense=False):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size == 0:
            return np.empty(0, dtype=np.int64)
        if ctx is None:
            raise ValueError("bitmap set decoding requires a VertexRange ctx")
        if wire.size != bitmap_words(ctx.nbits):
            raise CodecError(
                f"corrupt bitmap set buffer: {wire.size} bitmap words for "
                f"a {ctx.nbits}-bit range"
            )
        mask = unpack_frontier_bitmap(wire.view(np.uint64), ctx.nbits)
        return np.flatnonzero(mask).astype(np.int64) + ctx.lo


class AutoCodec(Codec):
    """Per-buffer codec polyalgorithm, mirroring the SpMSV kernel choice.

    Each buffer is encoded with every applicable candidate and the
    smallest wire image ships, prefixed by a one-word tag naming the
    winner so the receiver can dispatch.  Sparse exchange levels pick
    delta-varint, the dense middle levels pick the bitmap, and
    adversarial payloads (huge ids with wide deltas) fall back to raw —
    the per-level density measurement the compression literature uses,
    with the measurement done exactly rather than by estimate.
    """

    name = "auto"

    def __init__(self):
        self._candidates: tuple[Codec, ...] = (
            RawCodec(),
            DeltaVarintCodec(),
            BitmapCodec(),
        )
        self._by_tag = dict(enumerate(self._candidates))
        self._tag_of = {codec.name: tag for tag, codec in self._by_tag.items()}

    def _pick(self, images: list[tuple[int, np.ndarray]]) -> np.ndarray:
        tag, wire = min(images, key=lambda item: (item[1].size, item[0]))
        return np.concatenate([np.array([tag], dtype=np.int64), wire])

    def _inner(self, wire: np.ndarray) -> Codec:
        codec = self._by_tag.get(int(wire[0]))
        if codec is None:
            raise CodecError(f"corrupt auto buffer: unknown codec tag {int(wire[0])}")
        return codec

    def encode_pairs(self, targets, parents, ctx=None):
        targets, parents = _as_pairs(targets, parents)
        if targets.size == 0:
            return np.empty(0, dtype=np.int64)
        images = []
        for tag, codec in self._by_tag.items():
            if codec.name == "bitmap" and (ctx is None or ctx.nbits == 0):
                continue
            images.append((tag, codec.encode_pairs(targets, parents, ctx)))
        return self._pick(images)

    def decode_pairs(self, wire, ctx=None):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return self._inner(wire).decode_pairs(wire[1:], ctx)

    def encode_set(self, vertices, ctx=None, dense=False):
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.empty(0, dtype=np.int64)
        images = []
        for tag, codec in self._by_tag.items():
            if codec.name == "bitmap" and (ctx is None or ctx.nbits == 0):
                continue
            if codec.name == "raw" and dense and ctx is None:
                continue
            images.append((tag, codec.encode_set(vertices, ctx, dense)))
        return self._pick(images)

    def decode_set(self, wire, ctx=None, dense=False):
        wire = np.asarray(wire, dtype=np.int64)
        if wire.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._inner(wire).decode_set(wire[1:], ctx, dense)


#: Codec registry: name -> factory.
CODECS: dict[str, type[Codec]] = {
    RawCodec.name: RawCodec,
    DeltaVarintCodec.name: DeltaVarintCodec,
    BitmapCodec.name: BitmapCodec,
    AutoCodec.name: AutoCodec,
}


def get_codec(codec: str | Codec) -> Codec:
    """Resolve a codec name (or pass an instance through)."""
    if isinstance(codec, Codec):
        return codec
    try:
        return CODECS[codec]()
    except KeyError:
        raise ValueError(
            f"unknown codec {codec!r}; known: {sorted(CODECS)}"
        ) from None
