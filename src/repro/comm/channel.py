"""Codec- and sieve-aware wrapper around the exchange collectives.

:class:`CommChannel` is the single seam between the BFS algorithms and
the wire: every candidate ``Alltoallv`` and frontier ``Allgatherv`` goes
through it.  The channel

* optionally runs the :class:`~repro.comm.sieve.Sieve` over outgoing
  candidates (dropping targets this rank already shipped at an earlier
  level — exact, see ``sieve.py``),
* encodes each per-destination buffer with the configured
  :class:`~repro.comm.codecs.Codec` (so the engine's alpha-beta model
  prices the *encoded* size — compression is modeled speedup),
* records both ``payload_words`` (logical, pre-codec) and ``wire_words``
  (post-codec) per collective kind and per BFS level on the rank's
  :class:`~repro.mpsim.stats.RankStats`,
* charges the encode/decode compute through the site's
  :class:`~repro.model.costmodel.Charger`, and
* when a :class:`~repro.obs.tracer.RankTracer` is installed, wraps the
  sieve, codec encode/decode, and the collective itself in virtual-time
  phase spans (``sieve``/``encode``/``alltoallv``/``allgatherv``/
  ``decode``) nested under the algorithm's per-level spans.

Under the default ``codec="raw"`` with the sieve off, the channel is a
strict pass-through: byte-identical buffers, zero additional compute
charges, and the same charge ordering as the pre-channel call sites —
the seed behaviour, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.codecs import Codec, CodecError, VertexRange, get_codec
from repro.comm.sieve import Sieve
from repro.core.frontier import bitmap_words, bucket_by_owner
from repro.faults.injection import (
    NULL_RANK_FAULTS,
    UndetectedCorruptionError,
    corrupt_pieces,
)
from repro.obs.metrics import NULL_RANK_METRICS
from repro.obs.tracer import NULL_RANK_TRACER

#: Bytes per boolean in the sieve's ``seen`` array; its random-access
#: working set in 64-bit words is ``nglobal / 8``.
_SIEVE_BYTES_PER_FLAG = 8

#: Integer ops charged per payload word of a non-raw encode/decode pass:
#: delta, varint byte-count, and shift/mask work.  The transform is
#: linear, not a sort — pair buckets arrive owner-sorted (the 1D dedup
#: emits ascending targets and vertex ownership is monotone), and the
#: ``auto`` polyalgorithm selects its codec from the buffer's measured
#: density, one encode pass either way.
_CODEC_OPS_PER_WORD = 8.0


@dataclass(frozen=True)
class ExchangeInfo:
    """Accounting for one channel operation (one collective, one level).

    ``payload_words``/``wire_words`` follow the stats convention of the
    underlying collective: self-addressed all-to-all buckets are excluded,
    gather contributions are not.
    """

    pairs: int
    payload_words: float
    wire_words: float
    dropped: int


class CommChannel:
    """Per-communicator wire layer: sieve -> bucket -> encode -> collective.

    ``ranges[j]`` is the :class:`VertexRange` the buffers exchanged with
    group rank ``j`` index into: the destination's owned range for pair
    exchanges, the contributor's vector piece for frontier gathers.  Both
    endpoints derive it from the partition, so it never travels on the
    wire.
    """

    def __init__(
        self,
        comm,
        ranges: list[VertexRange],
        codec: str | Codec = "raw",
        sieve: Sieve | None = None,
        charger=None,
        tracer=None,
        metrics=None,
        faults=None,
    ):
        if len(ranges) != comm.size:
            raise ValueError(
                f"need one VertexRange per group rank: {len(ranges)} != {comm.size}"
            )
        self.comm = comm
        self.ranges = list(ranges)
        self.codec = get_codec(codec)
        self.sieve = sieve
        self.charger = charger
        #: Per-rank span recorder (a :class:`repro.obs.RankTracer`); the
        #: shared no-op handle when the run is untraced.
        self.obs = tracer if tracer is not None else NULL_RANK_TRACER
        #: Per-rank metrics handle (a :class:`repro.obs.RankMetrics`);
        #: the shared no-op handle when the run is unmetered.  Passive:
        #: counters never touch the clocks or the wire.
        self.metrics = metrics if metrics is not None else NULL_RANK_METRICS
        #: Per-rank fault handle (a :class:`repro.faults.RankFaults`); the
        #: shared no-op handle when no faults are injected.  One poll per
        #: collective on the fault-free path — zero charges, bit parity.
        self.faults = faults if faults is not None else NULL_RANK_FAULTS

    # -- internal helpers ---------------------------------------------------
    @property
    def _transcoding(self) -> bool:
        return self.codec.name != "raw"

    def _charge_encode(self, nitems: float, payload: float, wire: float) -> None:
        if self.charger is None or not self._transcoding:
            return
        self.charger.intops(_CODEC_OPS_PER_WORD * payload, codec_items=nitems)
        self.charger.stream(payload + wire, codec_wire_words=wire)

    def _charge_decode(self, nitems: float, wire: float) -> None:
        if self.charger is None or not self._transcoding:
            return
        self.charger.intops(_CODEC_OPS_PER_WORD * nitems)
        self.charger.stream(wire + nitems)

    def _record(self, kind: str, info: ExchangeInfo, level: int | None) -> None:
        self.comm.stats.record_channel(
            kind,
            info.payload_words,
            info.wire_words,
            level=level,
            dropped=float(info.dropped),
        )
        # One metrics sample per recorded attempt — the same cadence as
        # record_channel, so counter totals reconcile exactly against
        # SimStats.wire_words()/payload_words() even under fault retries.
        m = self.metrics
        m.inc("comm_exchanges", 1.0, kind=kind)
        m.inc("comm_payload_words", info.payload_words, kind=kind)
        m.inc("comm_wire_words", info.wire_words, kind=kind)
        m.observe("comm_wire_words_per_exchange", info.wire_words, kind=kind)

    def _collect_with_retry(
        self, site, info, level, do_collective, decode_one, corrupt_mode
    ):
        """Run one collective under the fault layer's retry loop.

        The retry decision is a pure query of the shared fault plan
        (``faults.poll``), consulted identically by every rank, so either
        all ranks commit an attempt or all ranks absorb the fault and
        retry — the collective sequence never diverges.  A ``timeout``
        fault suppresses the attempt entirely (the collective never
        completes, no buffers move, nothing is recorded); a ``corrupt``
        fault lets the collective run, proves on the victim that the
        codec rejects the damaged wire, then drops the attempt on every
        rank.  Fault charges land on ``fault_time``, not compute or MPI.
        """
        attempt = 0
        while True:
            fault = self.faults.poll(site, level, attempt)
            if fault is not None and fault[1].kind == "timeout":
                self.faults.absorb(*fault, site, level, attempt)
                attempt += 1
                continue
            self._record(site, info, level)
            with self.obs.span(site, level=level, wire_words=info.wire_words):
                pieces = do_collective()
            if fault is None:
                return pieces
            if self.faults.is_corruption_victim(fault[1]):
                self._verify_corruption(pieces, decode_one, corrupt_mode, site, level)
            self.faults.absorb(*fault, site, level, attempt)
            attempt += 1

    def _verify_corruption(self, pieces, decode_one, mode, site, level) -> None:
        """Damage one received piece and assert the codec rejects it."""
        hit = corrupt_pieces(pieces, mode)
        if hit is None:
            return  # nothing on the wire to damage this attempt
        index, bad = hit
        try:
            decode_one(index, bad)
        except CodecError:
            self.comm.count(fault_corruptions=1.0)
            return
        raise UndetectedCorruptionError(
            f"{self.codec.name} codec decoded a corrupted {site} buffer "
            f"at level {level}"
        )

    # -- candidate pair exchange (1D top-down, 2D fold) ---------------------
    def pack_pairs(
        self, targets: np.ndarray, parents: np.ndarray, owners: np.ndarray
    ) -> tuple[list[np.ndarray], ExchangeInfo]:
        """Sieve, bucket by destination, and encode the candidate pairs.

        Returns the per-destination wire buffers plus the accounting the
        caller threads into :meth:`exchange_pairs`.  Splitting pack from
        exchange lets the call site keep its own compute charges between
        the two — charge order feeds collective arrival times, so raw
        parity requires it.
        """
        targets = np.asarray(targets, dtype=np.int64)
        parents = np.asarray(parents, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        if self.sieve is not None:
            with self.obs.span("sieve"):
                before = targets.size
                if self.charger is not None and before:
                    # One irregular probe per candidate into the seen bitmask.
                    self.charger.random(
                        float(before),
                        ws_words=max(self.sieve.nglobal / _SIEVE_BYTES_PER_FLAG, 1.0),
                    )
                targets, parents, owners = self.sieve.filter(
                    targets, parents, owners
                )
                dropped = int(before - targets.size)
                if self.charger is not None and dropped:
                    self.charger.count(sieve_dropped=float(dropped))
                self.sieve.mark(targets)
                self.metrics.inc("sieve_candidates", float(before))
                self.metrics.inc("sieve_dropped", float(dropped))
        else:
            dropped = 0
        with self.obs.span("encode", codec=self.codec.name):
            self.metrics.inc("codec_encodes", 1.0, codec=self.codec.name)
            buckets, _counts = bucket_by_owner(
                owners, self.comm.size, targets, parents
            )
            me = self.comm.rank
            send: list[np.ndarray] = []
            payload = wire = 0.0
            for dst, (dst_targets, dst_parents) in enumerate(buckets):
                buf = self.codec.encode_pairs(
                    dst_targets, dst_parents, self.ranges[dst]
                )
                send.append(buf)
                if dst != me:
                    payload += 2.0 * dst_targets.size
                    wire += float(buf.size)
            self._charge_encode(float(targets.size), 2.0 * targets.size, wire)
        info = ExchangeInfo(int(targets.size), payload, wire, dropped)
        return send, info

    def exchange_pairs(
        self, send: list[np.ndarray], info: ExchangeInfo, level: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All-to-all the packed buffers and decode what arrives.

        Returns the concatenated ``(targets, parents)`` addressed to this
        rank; identical to the seed's ``alltoallv_concat`` +
        ``unpack_pairs`` under the raw codec.
        """
        ctx = self.ranges[self.comm.rank]
        pieces = self._collect_with_retry(
            "alltoallv",
            info,
            level,
            lambda: self.comm.alltoallv(send),
            lambda _r, piece: self.codec.decode_pairs(piece, ctx),
            "truncate",
        )
        with self.obs.span("decode", codec=self.codec.name):
            decoded = [self.codec.decode_pairs(piece, ctx) for piece in pieces]
            if decoded:
                rv = np.concatenate([t for t, _ in decoded])
                rp = np.concatenate([p for _, p in decoded])
            else:
                rv = np.empty(0, dtype=np.int64)
                rp = np.empty(0, dtype=np.int64)
            self._charge_decode(
                float(rv.size),
                float(sum(p.size for p in pieces)),
            )
        return rv, rp

    # -- candidate triple exchange (batched queries: repro.query) -----------
    def pack_triples(
        self,
        targets: np.ndarray,
        values: np.ndarray,
        extras: np.ndarray,
        owners: np.ndarray,
    ) -> tuple[list[np.ndarray], ExchangeInfo]:
        """Bucket and encode ``(target, value, extra)`` candidate triples.

        The batched-query steps ship one extra 64-bit column per pair:
        the ``uint64`` lane word of a multi-source traversal (viewed as
        int64) or the tentative distance of an SSSP relaxation.  The
        ``(target, value)`` columns ride the configured codec exactly like
        :meth:`pack_pairs`; the extra column travels raw behind a length
        header so a damaged buffer is detectable (header/pair/extra sizes
        must agree, else :class:`CodecError`).  The sieve is structurally
        incompatible — a target legitimately re-ships whenever a *new
        lane* reaches it — so triple sites refuse one outright, and so is
        the bitmap codec, which collapses the duplicate targets a lane
        batch carries.

        Each bucket is canonically sorted by (target, value, extra)
        before encoding: the raw codec preserves order and delta-varint's
        stable (target, value) sort is then the identity, so the decoded
        pair order always matches the raw extra column row for row.
        """
        if self.sieve is not None:
            raise ValueError(
                "sieve is unsupported for triple exchanges: lane payloads "
                "re-ship targets whenever a new lane reaches them"
            )
        if self.codec.name == "bitmap":
            raise ValueError(
                "bitmap codec is unsupported for triple exchanges: it "
                "collapses the duplicate targets a lane batch carries"
            )
        targets = np.asarray(targets, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        extras = np.asarray(extras, dtype=np.int64)
        with self.obs.span("encode", codec=self.codec.name):
            self.metrics.inc("codec_encodes", 1.0, codec=self.codec.name)
            buckets, _counts = bucket_by_owner(
                owners, self.comm.size, targets, values, extras
            )
            me = self.comm.rank
            send: list[np.ndarray] = []
            payload = wire = 0.0
            for dst, (dst_targets, dst_values, dst_extras) in enumerate(buckets):
                if dst_targets.size == 0:
                    buf = np.empty(0, dtype=np.int64)
                else:
                    order = np.lexsort((dst_extras, dst_values, dst_targets))
                    dst_targets = dst_targets[order]
                    dst_values = dst_values[order]
                    dst_extras = dst_extras[order]
                    # The auto codec gets no range ctx, keeping its
                    # per-buffer choice off the bitmap path.
                    ctx = None if self.codec.name == "auto" else self.ranges[dst]
                    pair_buf = self.codec.encode_pairs(
                        dst_targets, dst_values, ctx
                    )
                    buf = np.concatenate(
                        [
                            np.array([pair_buf.size], dtype=np.int64),
                            pair_buf,
                            dst_extras,
                        ]
                    )
                send.append(buf)
                if dst != me:
                    payload += 3.0 * dst_targets.size
                    wire += float(buf.size)
            self._charge_encode(float(targets.size), 3.0 * targets.size, wire)
        info = ExchangeInfo(int(targets.size), payload, wire, 0)
        return send, info

    def _decode_triples_piece(
        self, piece: np.ndarray, ctx: VertexRange
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        piece = np.asarray(piece, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        if piece.size == 0:
            return empty, empty, empty
        pair_words = int(piece[0])
        if pair_words < 0 or pair_words > piece.size - 1:
            raise CodecError(
                f"triple buffer header claims {pair_words} pair words "
                f"but only {piece.size - 1} words follow"
            )
        targets, values = self.codec.decode_pairs(piece[1 : 1 + pair_words], ctx)
        extras = piece[1 + pair_words :]
        if extras.size != targets.size:
            raise CodecError(
                f"triple buffer carries {extras.size} extra words "
                f"for {targets.size} pairs"
            )
        return targets, values, extras

    def exchange_triples(
        self, send: list[np.ndarray], info: ExchangeInfo, level: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All-to-all the packed triple buffers and decode what arrives."""
        ctx = self.ranges[self.comm.rank]
        pieces = self._collect_with_retry(
            "alltoallv",
            info,
            level,
            lambda: self.comm.alltoallv(send),
            lambda _r, piece: self._decode_triples_piece(piece, ctx),
            "truncate",
        )
        with self.obs.span("decode", codec=self.codec.name):
            decoded = [self._decode_triples_piece(piece, ctx) for piece in pieces]
            if decoded:
                rt = np.concatenate([t for t, _, _ in decoded])
                rv = np.concatenate([v for _, v, _ in decoded])
                rx = np.concatenate([x for _, _, x in decoded])
            else:
                rt = rv = rx = np.empty(0, dtype=np.int64)
            self._charge_decode(
                float(rt.size),
                float(sum(np.asarray(p).size for p in pieces)),
            )
        return rt, rv, rx

    # -- frontier gathers (bottom-up expand, 2D expand) ---------------------
    def expand_bitmap(
        self, frontier: np.ndarray, level: int | None = None
    ) -> tuple[np.ndarray, ExchangeInfo]:
        """Allgather the frontier as a global boolean mask.

        ``frontier`` holds this rank's frontier vertices (global ids inside
        its own :class:`VertexRange`); the result is the dense mask over
        the union of all ranges, in group-rank order — the bottom-up
        sweep's ``Allgatherv`` with the payload priced post-codec.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        mine = self.ranges[self.comm.rank]
        with self.obs.span("encode", codec=self.codec.name):
            self.metrics.inc("codec_encodes", 1.0, codec=self.codec.name)
            payload = float(bitmap_words(mine.nbits))
            buf = self.codec.encode_set(frontier, mine, dense=True)
            self._charge_encode(float(frontier.size), payload, float(buf.size))
        info = ExchangeInfo(int(frontier.size), payload, float(buf.size), 0)
        pieces = self._collect_with_retry(
            "allgatherv",
            info,
            level,
            lambda: self.comm.allgatherv(buf, concat=False),
            lambda r, piece: self.codec.decode_set(piece, self.ranges[r], dense=True),
            "truncate",
        )
        with self.obs.span("decode", codec=self.codec.name):
            nglobal = sum(r.nbits for r in self.ranges)
            mask = np.zeros(nglobal, dtype=bool)
            wire_recv = 0.0
            for r, piece in enumerate(pieces):
                vertices = self.codec.decode_set(piece, self.ranges[r], dense=True)
                mask[vertices] = True
                wire_recv += float(np.asarray(piece).size)
            self._charge_decode(float(nglobal) / 64.0, wire_recv)
            if self.sieve is not None:
                self.sieve.mark_mask(mask)
        return mask, info

    def gather_mask(
        self, vertices: np.ndarray, level: int | None = None
    ) -> tuple[np.ndarray, ExchangeInfo]:
        """Allgather dense per-range bitmaps into one boolean mask.

        Unlike :meth:`expand_bitmap` — whose result mask spans the union
        of *disjoint* ranges tiling ``[0, nglobal)`` — this gathers
        ranges that may overlap or start anywhere: each rank contributes
        the bitmap of its own :class:`VertexRange` and the decoded
        pieces are OR-unioned into a mask over ``[base, top)`` where
        ``base``/``top`` bound the group's ranges.  Index ``i`` of the
        mask is vertex ``base + i``.  The 2D bottom-up step uses it for
        both of its gathers: the frontier along a processor column
        (identical overlapping ranges, one column block) and the
        visited vertices along a processor row (disjoint vector pieces
        starting at the row block's offset, not at zero).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        mine = self.ranges[self.comm.rank]
        with self.obs.span("encode", codec=self.codec.name):
            self.metrics.inc("codec_encodes", 1.0, codec=self.codec.name)
            payload = float(bitmap_words(mine.nbits))
            buf = self.codec.encode_set(vertices, mine, dense=True)
            self._charge_encode(float(vertices.size), payload, float(buf.size))
        info = ExchangeInfo(int(vertices.size), payload, float(buf.size), 0)
        pieces = self._collect_with_retry(
            "allgatherv",
            info,
            level,
            lambda: self.comm.allgatherv(buf, concat=False),
            lambda r, piece: self.codec.decode_set(piece, self.ranges[r], dense=True),
            "truncate",
        )
        with self.obs.span("decode", codec=self.codec.name):
            base = min(r.lo for r in self.ranges)
            top = max(r.lo + r.nbits for r in self.ranges)
            mask = np.zeros(top - base, dtype=bool)
            wire_recv = 0.0
            for r, piece in enumerate(pieces):
                decoded = self.codec.decode_set(piece, self.ranges[r], dense=True)
                mask[decoded - base] = True
                wire_recv += float(np.asarray(piece).size)
            self._charge_decode(float(top - base) / 64.0, wire_recv)
            if self.sieve is not None:
                self.sieve.mark(np.flatnonzero(mask) + base)
        return mask, info

    def allgatherv_vertices(
        self, vertices: np.ndarray, level: int | None = None
    ) -> tuple[np.ndarray, ExchangeInfo]:
        """Allgather sparse vertex lists (the 2D expand's frontier gather).

        Each rank contributes the vertices of its own vector piece; the
        result concatenates every rank's decoded list in group-rank order.
        Raw is the identity, so ordering matches the seed exactly; the
        downstream SpMSV's (select, max) semiring is order-independent, so
        codecs that sort are safe.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        mine = self.ranges[self.comm.rank]
        with self.obs.span("encode", codec=self.codec.name):
            self.metrics.inc("codec_encodes", 1.0, codec=self.codec.name)
            buf = self.codec.encode_set(vertices, mine, dense=False)
            self._charge_encode(
                float(vertices.size), float(vertices.size), float(buf.size)
            )
        info = ExchangeInfo(
            int(vertices.size), float(vertices.size), float(buf.size), 0
        )
        # Truncating a raw vertex list yields a shorter-but-valid list, so
        # sparse-list sites smash a header/id word instead — except the
        # bitmap codec, whose image is dense and length-checked anyway.
        mode = "truncate" if self.codec.name == "bitmap" else "smash"
        pieces = self._collect_with_retry(
            "allgatherv",
            info,
            level,
            lambda: self.comm.allgatherv(buf, concat=False),
            lambda r, piece: self.codec.decode_set(piece, self.ranges[r], dense=False),
            mode,
        )
        with self.obs.span("decode", codec=self.codec.name):
            decoded = [
                self.codec.decode_set(piece, self.ranges[r], dense=False)
                for r, piece in enumerate(pieces)
            ]
            gathered = (
                np.concatenate(decoded) if decoded else np.empty(0, dtype=np.int64)
            )
            self._charge_decode(
                float(gathered.size), float(sum(np.asarray(p).size for p in pieces))
            )
            if self.sieve is not None:
                self.sieve.mark(gathered)
        return gathered, info
