"""Pluggable wire-format subsystem for the BFS exchanges.

The compression + sieve layer of Lv et al. (arXiv:1208.5542) applied to
this repo's 1D/2D BFS: :mod:`~repro.comm.codecs` defines the wire
formats (``raw``, ``delta-varint``, ``bitmap``, ``auto``),
:mod:`~repro.comm.sieve` the exact duplicate-candidate filter, and
:mod:`~repro.comm.channel` the :class:`CommChannel` every exchange site
goes through.  Select with ``run_bfs(..., codec=..., sieve=...)`` or the
``--codec``/``--sieve`` CLI flags.
"""

from repro.comm.channel import CommChannel, ExchangeInfo
from repro.comm.codecs import (
    CODECS,
    AutoCodec,
    BitmapCodec,
    Codec,
    CodecError,
    DeltaVarintCodec,
    RawCodec,
    VertexRange,
    get_codec,
)
from repro.comm.sieve import Sieve, make_sieve, restore_sieve, sieve_state
from repro.comm.varint import decode_varints, encode_varints, varint_sizes

__all__ = [
    "CODECS",
    "AutoCodec",
    "BitmapCodec",
    "Codec",
    "CodecError",
    "CommChannel",
    "DeltaVarintCodec",
    "ExchangeInfo",
    "RawCodec",
    "Sieve",
    "VertexRange",
    "decode_varints",
    "encode_varints",
    "get_codec",
    "make_sieve",
    "restore_sieve",
    "sieve_state",
    "varint_sizes",
]
