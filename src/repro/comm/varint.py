"""Vectorized LEB128 variable-length integer packing.

The delta-varint wire format (Lv et al., "Compression and Sieve":
arXiv:1208.5542) packs each integer into the minimum number of 7-bit
groups, least-significant first, with the high bit of every byte flagging
continuation.  Sorted vertex ids delta-encode into tiny values, so a
scale-``s`` traversal ships 2-3 bytes per id instead of the 8-byte word
the raw format costs.

Both directions are fully vectorized: the per-value byte count is a sum
of threshold comparisons, and the byte scatter/gather runs one NumPy pass
per byte *position* (at most :data:`MAX_VARINT_BYTES` passes), never one
per value.
"""

from __future__ import annotations

import numpy as np

#: A 64-bit value needs at most ceil(64 / 7) = 10 LEB128 bytes.
MAX_VARINT_BYTES = 10


def varint_sizes(values: np.ndarray) -> np.ndarray:
    """Encoded byte count of each value (vectorized)."""
    values = np.ascontiguousarray(values).view(np.uint64)
    sizes = np.ones(values.size, dtype=np.int64)
    for k in range(1, MAX_VARINT_BYTES):
        sizes += (values >= (np.uint64(1) << np.uint64(7 * k))).astype(np.int64)
    return sizes


def encode_varints(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a 64-bit array into a ``uint8`` stream."""
    values = np.ascontiguousarray(values, dtype=np.int64).view(np.uint64)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    sizes = varint_sizes(values)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    out = np.empty(int(sizes.sum()), dtype=np.uint8)
    for j in range(int(sizes.max())):
        sel = sizes > j
        group = (values[sel] >> np.uint64(7 * j)) & np.uint64(0x7F)
        byte = group.astype(np.uint8)
        byte |= ((sizes[sel] - 1 > j).astype(np.uint8)) << 7
        out[starts[sel] + j] = byte
    return out


def decode_varints(stream: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_varints`; returns ``int64`` values."""
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    if stream.size == 0:
        return np.empty(0, dtype=np.int64)
    terminal = (stream & 0x80) == 0
    if not terminal[-1]:
        raise ValueError("truncated varint stream: last byte has continuation bit")
    ends = np.flatnonzero(terminal)
    starts = np.concatenate([[0], ends[:-1] + 1])
    lengths = ends - starts + 1
    if int(lengths.max()) > MAX_VARINT_BYTES:
        raise ValueError(
            f"varint longer than {MAX_VARINT_BYTES} bytes in stream"
        )
    values = np.zeros(ends.size, dtype=np.uint64)
    for j in range(int(lengths.max())):
        sel = lengths > j
        group = stream[starts[sel] + j].astype(np.uint64) & np.uint64(0x7F)
        values[sel] |= group << np.uint64(7 * j)
    return values.view(np.int64)


def bytes_to_words(stream: np.ndarray) -> np.ndarray:
    """Pad a byte stream to a whole number of 64-bit wire words."""
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    nwords = (stream.size + 7) // 8
    padded = np.zeros(8 * nwords, dtype=np.uint8)
    padded[: stream.size] = stream
    return padded.view(np.int64)


def words_to_bytes(words: np.ndarray, nbytes: int) -> np.ndarray:
    """Recover the first ``nbytes`` bytes of a word-packed stream."""
    words = np.ascontiguousarray(words, dtype=np.int64)
    if nbytes < 0 or nbytes > 8 * words.size:
        raise ValueError(
            f"nbytes {nbytes} out of range for {words.size}-word buffer"
        )
    return words.view(np.uint8)[:nbytes]
