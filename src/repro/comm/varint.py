"""LEB128 variable-length integer packing for the compressed codecs.

The delta-varint wire format (Lv et al., "Compression and Sieve":
arXiv:1208.5542) packs each integer into the minimum number of 7-bit
groups, least-significant first, with the high bit of every byte flagging
continuation.  Sorted vertex ids delta-encode into tiny values, so a
scale-``s`` traversal ships 2-3 bytes per id instead of the 8-byte word
the raw format costs.

The per-value group loops dispatch through :mod:`repro.kernels`
(``varint_sizes`` / ``varint_encode`` / ``varint_decode``), so the
``REPRO_KERNELS`` backend switch applies: the numpy backend runs one
pass per byte *position* (at most :data:`MAX_VARINT_BYTES` passes),
never one per value.  Word padding stays here — it is a flat
pad-and-view, not a per-element loop.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

#: A 64-bit value needs at most ceil(64 / 7) = 10 LEB128 bytes.
MAX_VARINT_BYTES = kernels.MAX_VARINT_BYTES


def varint_sizes(values: np.ndarray) -> np.ndarray:
    """Encoded byte count of each value."""
    return kernels.varint_sizes(values)


def encode_varints(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a 64-bit array into a ``uint8`` stream."""
    return kernels.varint_encode(values)


def decode_varints(stream: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_varints`; returns ``int64`` values."""
    return kernels.varint_decode(stream)


def bytes_to_words(stream: np.ndarray) -> np.ndarray:
    """Pad a byte stream to a whole number of 64-bit wire words."""
    stream = np.ascontiguousarray(stream, dtype=np.uint8)
    nwords = (stream.size + 7) // 8
    padded = np.zeros(8 * nwords, dtype=np.uint8)
    padded[: stream.size] = stream
    return padded.view(np.int64)


def words_to_bytes(words: np.ndarray, nbytes: int) -> np.ndarray:
    """Recover the first ``nbytes`` bytes of a word-packed stream."""
    words = np.ascontiguousarray(words, dtype=np.int64)
    if nbytes < 0 or nbytes > 8 * words.size:
        raise ValueError(
            f"nbytes {nbytes} out of range for {words.size}-word buffer"
        )
    return words.view(np.uint8)[:nbytes]
