"""Sender-side sieve: drop candidates whose target is already discovered.

Lv et al. ("Compression and Sieve", arXiv:1208.5542) observe that a large
fraction of the candidate (vertex, parent) pairs a rank ships were already
sent — and therefore discovered — at an earlier level.  Each rank keeps a
``seen`` bitmask over the *global* vertex space recording every target it
has ever contributed to an exchange (plus every frontier vertex it has
observed through an expand).  A candidate whose target is marked can be
dropped before bucketing: the filter is **exact**, not an approximation,
because a target sent at level ``L`` is visited by the end of level
``L``, so the receiver's own visited-check would discard any later
re-send of it.  Parents/levels are bit-identical with the sieve on or
off; only the wire volume changes.
"""

from __future__ import annotations

import numpy as np


class Sieve:
    """Per-rank remote-visited filter over the global vertex space."""

    def __init__(self, nglobal: int):
        if nglobal < 0:
            raise ValueError(f"nglobal must be >= 0, got {nglobal}")
        self.nglobal = int(nglobal)
        self.seen = np.zeros(self.nglobal, dtype=bool)
        #: Candidates dropped by :meth:`filter` over the sieve's lifetime.
        self.dropped = 0

    def filter(self, targets: np.ndarray, *arrays: np.ndarray):
        """Keep only candidates whose target has not been seen.

        Returns ``(targets, *arrays)`` filtered by the same mask.  Does
        NOT mark the survivors — call :meth:`mark` once they are actually
        shipped, so a failed pack cannot poison the filter.
        """
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size == 0:
            return (targets, *arrays)
        keep = ~self.seen[targets]
        self.dropped += int(targets.size - np.count_nonzero(keep))
        return (targets[keep], *(np.asarray(a)[keep] for a in arrays))

    def mark(self, vertices: np.ndarray) -> None:
        """Record vertices as seen (sent or observed discovered)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size:
            self.seen[vertices] = True

    def mark_mask(self, mask: np.ndarray) -> None:
        """Record a dense global bool mask (e.g. a gathered frontier)."""
        np.logical_or(self.seen, mask, out=self.seen)


def make_sieve(sieve: bool | Sieve | None, nglobal: int) -> Sieve | None:
    """Normalize a ``sieve`` argument (flag or prebuilt instance)."""
    if isinstance(sieve, Sieve):
        return sieve
    return Sieve(nglobal) if sieve else None


def sieve_state(sieve: Sieve | None) -> dict:
    """The sieve's dedup epoch, as checkpoint state entries."""
    if sieve is None:
        return {}
    return {"sieve_seen": sieve.seen, "sieve_dropped": sieve.dropped}


def restore_sieve(sieve: Sieve | None, snapshot: dict) -> None:
    """Rewind a sieve to a checkpointed epoch (no-op without one)."""
    if sieve is not None and "sieve_seen" in snapshot:
        sieve.seen[:] = snapshot["sieve_seen"]
        sieve.dropped = int(snapshot["sieve_dropped"])
